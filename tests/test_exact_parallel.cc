// Tests for the parallel work-stealing exact branch-and-bound:
// sequential-vs-parallel equivalence at every thread count, determinism
// across thread counts, cancellation mid-search and the api registration.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "api/api.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/exact.h"
#include "sched/exact_parallel.h"
#include "util/cancellation.h"

namespace bagsched {
namespace {

using model::Instance;

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

TEST(ExactParallelTest, MatchesSequentialOnRandomInstances) {
  for (const char* family : {"twopoint", "uniform", "smallbags"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Instance instance = gen::by_name(family, 16, 4, seed);
      const auto seq = sched::solve_exact(instance);
      ASSERT_TRUE(seq.proven_optimal) << family << " seed " << seed;
      for (const int threads : kThreadCounts) {
        sched::ExactParallelOptions options;
        options.num_threads = threads;
        const auto par = sched::solve_exact_parallel(instance, options);
        EXPECT_TRUE(par.proven_optimal)
            << family << " seed " << seed << " threads " << threads;
        EXPECT_DOUBLE_EQ(par.makespan, seq.makespan)
            << family << " seed " << seed << " threads " << threads;
        EXPECT_TRUE(model::validate(instance, par.schedule).ok());
        // Node-count sanity: the parallel search explores the same tree
        // modulo incumbent-arrival races and frontier bookkeeping (zero
        // when the initial incumbent already met the lower bound).
        EXPECT_GE(par.nodes, 0);
        EXPECT_LT(par.nodes, 4 * seq.nodes + 100000)
            << family << " seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(ExactParallelTest, MatchesPlantedOptimum) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::PlantedParams params;
    params.num_machines = 4;
    params.min_jobs_per_machine = 2;
    params.max_jobs_per_machine = 4;
    params.num_bags = 8;
    params.seed = seed;
    const auto planted = gen::planted(params);
    for (const int threads : kThreadCounts) {
      sched::ExactParallelOptions options;
      options.num_threads = threads;
      const auto result =
          sched::solve_exact_parallel(planted.instance, options);
      ASSERT_TRUE(result.proven_optimal)
          << "seed " << seed << " threads " << threads;
      EXPECT_NEAR(result.makespan, planted.opt, 1e-9);
      EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
    }
  }
}

TEST(ExactParallelTest, BitIdenticalAcrossThreadCounts) {
  // The determinism contract: on a completed search, makespan and
  // proven_optimal are identical regardless of thread count.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance instance = gen::by_name("twopoint", 18, 4, seed);
    double reference = -1.0;
    for (const int threads : kThreadCounts) {
      sched::ExactParallelOptions options;
      options.num_threads = threads;
      const auto result = sched::solve_exact_parallel(instance, options);
      ASSERT_TRUE(result.proven_optimal);
      if (reference < 0.0) {
        reference = result.makespan;
      } else {
        EXPECT_EQ(result.makespan, reference)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(ExactParallelTest, BudgetExhaustionStillFeasible) {
  const Instance instance = gen::by_name("uniform", 40, 6, 3);
  for (const int threads : kThreadCounts) {
    sched::ExactParallelOptions options;
    options.num_threads = threads;
    options.base.max_nodes = 5000;
    const auto result = sched::solve_exact_parallel(instance, options);
    EXPECT_FALSE(result.proven_optimal);
    EXPECT_FALSE(result.cancelled);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
    EXPECT_GT(result.makespan, 0.0);
  }
}

TEST(ExactParallelTest, CleanCancellationMidSearch) {
  // Big enough that the search is still running when the token fires.
  const Instance instance = gen::by_name("uniform", 42, 6, 7);
  for (const int threads : kThreadCounts) {
    util::CancellationToken token;
    sched::ExactParallelOptions options;
    options.num_threads = threads;
    options.base.time_limit_seconds = 30.0;
    options.base.check_interval = 256;  // react quickly
    options.base.cancel = &token;
    std::thread firer([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      token.request_stop();
    });
    const auto result = sched::solve_exact_parallel(instance, options);
    firer.join();
    EXPECT_FALSE(result.proven_optimal) << "threads " << threads;
    EXPECT_TRUE(result.cancelled) << "threads " << threads;
    // The best incumbent found before the stop is still returned.
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  }
}

TEST(ExactParallelTest, CheckIntervalKnobAcceptsAnyValue) {
  const Instance instance = gen::by_name("twopoint", 12, 3, 1);
  for (const long long interval : {1LL, 3LL, 1024LL, 1LL << 40}) {
    sched::ExactOptions sequential;
    sequential.check_interval = interval;
    const auto seq = sched::solve_exact(instance, sequential);
    EXPECT_TRUE(seq.proven_optimal) << "interval " << interval;
    sched::ExactParallelOptions parallel;
    parallel.base.check_interval = interval;
    parallel.num_threads = 2;
    const auto par = sched::solve_exact_parallel(instance, parallel);
    EXPECT_TRUE(par.proven_optimal) << "interval " << interval;
    EXPECT_DOUBLE_EQ(par.makespan, seq.makespan);
  }
}

TEST(ExactParallelTest, RegisteredInApi) {
  const auto& registry = api::SolverRegistry::global();
  ASSERT_TRUE(registry.contains("exact-parallel"));
  EXPECT_TRUE(registry.info("exact-parallel").exact);
  EXPECT_TRUE(registry.info("exact-parallel").respects_bags);

  const Instance instance = gen::by_name("twopoint", 14, 3, 2);
  api::SolveOptions options;
  options.num_threads = 2;
  const auto result =
      registry.resolve("exact-parallel").solve(instance, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(api::stat_int(result.stats, "threads"), 2);
  EXPECT_GT(api::stat_int(result.stats, "nodes"), 0);

  const auto reference = registry.resolve("exact").solve(instance, options);
  EXPECT_NEAR(result.makespan, reference.makespan, 1e-12);
}

}  // namespace
}  // namespace bagsched
