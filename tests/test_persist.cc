// Tests for the persistence layer (DESIGN.md §8): WAL framing round trips,
// torn-tail detection at every possible truncation offset, CRC corruption
// handling, the session journal's replay/snapshot equivalence, directory
// locking and fail-fast validation, and the persist.* fault points'
// append-before-ack semantics.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cache/canonicalize.h"
#include "gen/churn.h"
#include "model/delta.h"
#include "online/session.h"
#include "persist/journal.h"
#include "persist/wal.h"
#include "util/fault.h"

namespace bagsched {
namespace {

using persist::FsyncPolicy;
using persist::PersistError;
using persist::SessionJournal;
using persist::Wal;
using persist::WalReplay;

/// mkdtemp-backed scratch directory, recursively removed on destruction.
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/bagsched_persist_XXXXXX";
    const char* made = ::mkdtemp(templ);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Disables fault injection when the test scope ends, pass or fail.
struct FaultGuard {
  ~FaultGuard() { util::fault::disable(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good()) << path;
}

gen::ChurnParams tiny_churn(std::uint64_t seed = 21) {
  gen::ChurnParams params;
  params.num_jobs = 30;
  params.num_machines = 5;
  params.num_bags = 8;
  params.steps = 8;
  params.seed = seed;
  return params;
}

online::SessionOptions cheap_tuning() {
  online::SessionOptions tuning;
  tuning.solvers = {"greedy-bags"};
  tuning.solve.seed = 5;
  tuning.regret_bound = 0.35;
  return tuning;
}

// --- CRC + framing ---------------------------------------------------------

TEST(WalTest, Crc32cMatchesTheCastagnoliCheckValue) {
  // The standard CRC-32C check value: crc of "123456789".
  EXPECT_EQ(persist::crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(persist::crc32c("", 0), 0u);
  // Chaining partial computations equals one pass.
  const std::uint32_t partial = persist::crc32c("12345", 5);
  EXPECT_EQ(persist::crc32c("6789", 4, partial),
            persist::crc32c("123456789", 9));
}

TEST(WalTest, FsyncPolicyParsesAndRoundTrips) {
  EXPECT_EQ(persist::fsync_policy_from_string("always"), FsyncPolicy::Always);
  EXPECT_EQ(persist::fsync_policy_from_string("interval"),
            FsyncPolicy::Interval);
  EXPECT_EQ(persist::fsync_policy_from_string("off"), FsyncPolicy::Off);
  EXPECT_STREQ(persist::to_string(FsyncPolicy::Interval), "interval");
  EXPECT_THROW(persist::fsync_policy_from_string("zebra"), PersistError);
}

TEST(WalTest, AppendReopenRoundTripsBinaryPayloads) {
  TempDir dir;
  const std::string path = dir.file("log.wal");
  const std::vector<std::string> payloads = {
      "hello", "", std::string("\x00\x01\xff\x7f", 4), "{\"k\":1}",
      std::string(3000, 'x')};
  {
    Wal wal = Wal::open(path, FsyncPolicy::Off);
    for (const std::string& payload : payloads) wal.append(payload);
    EXPECT_EQ(wal.appends(), payloads.size());
    wal.sync();
  }
  WalReplay replay;
  Wal wal = Wal::open(path, FsyncPolicy::Off, 0.025, &replay);
  EXPECT_EQ(replay.records, payloads);
  EXPECT_EQ(replay.truncated_bytes, 0u);
  EXPECT_EQ(replay.valid_bytes, wal.size_bytes());
}

TEST(WalTest, TornTailTruncateAtEveryOffsetKeepsTheLongestValidPrefix) {
  TempDir dir;
  const std::string golden = dir.file("golden.wal");
  const std::vector<std::string> payloads = {
      "a", "bb", "", "record-three", std::string(40, 'z'), "tail"};
  std::vector<std::uint64_t> boundaries = {0};  // byte size after k records
  {
    Wal wal = Wal::open(golden, FsyncPolicy::Off);
    for (const std::string& payload : payloads) {
      wal.append(payload);
      boundaries.push_back(wal.size_bytes());
    }
  }
  const std::string bytes = read_file(golden);
  ASSERT_EQ(bytes.size(), boundaries.back());

  const std::string torn = dir.file("torn.wal");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    // The longest valid prefix: every record fully inside the cut.
    std::size_t keep = 0;
    while (keep < payloads.size() && boundaries[keep + 1] <= cut) ++keep;

    write_file(torn, bytes.substr(0, cut));
    WalReplay replay;
    {
      Wal wal = Wal::open(torn, FsyncPolicy::Off, 0.025, &replay);
      ASSERT_EQ(replay.records.size(), keep) << "cut at " << cut;
      for (std::size_t i = 0; i < keep; ++i) {
        EXPECT_EQ(replay.records[i], payloads[i]) << "cut at " << cut;
      }
      EXPECT_EQ(replay.valid_bytes, boundaries[keep]) << "cut at " << cut;
      EXPECT_EQ(replay.truncated_bytes, cut - boundaries[keep])
          << "cut at " << cut;
      // The log must accept appends right after tail truncation.
      wal.append("after-truncate");
    }
    WalReplay again;
    Wal::open(torn, FsyncPolicy::Off, 0.025, &again);
    ASSERT_EQ(again.records.size(), keep + 1) << "cut at " << cut;
    EXPECT_EQ(again.records.back(), "after-truncate") << "cut at " << cut;
    EXPECT_EQ(again.truncated_bytes, 0u) << "cut at " << cut;
  }
}

TEST(WalTest, CrcCorruptionDropsTheRecordAndEverythingAfterIt) {
  TempDir dir;
  const std::string path = dir.file("log.wal");
  const std::vector<std::string> payloads = {"one", "two", "three", "four"};
  std::vector<std::uint64_t> boundaries = {0};
  {
    Wal wal = Wal::open(path, FsyncPolicy::Off);
    for (const std::string& payload : payloads) {
      wal.append(payload);
      boundaries.push_back(wal.size_bytes());
    }
  }
  // Flip one payload byte of record 2 (offset: its frame start + 8-byte
  // header). Records 3+ are still intact on disk, but the prefix contract
  // says they go too: the log is only trusted up to the first bad frame.
  std::string bytes = read_file(path);
  bytes[boundaries[2] + 8] ^= 0x40;
  write_file(path, bytes);

  WalReplay replay;
  {
    Wal wal = Wal::open(path, FsyncPolicy::Off, 0.025, &replay);
    ASSERT_EQ(replay.records.size(), 2u);
    EXPECT_EQ(replay.records[0], "one");
    EXPECT_EQ(replay.records[1], "two");
    EXPECT_EQ(replay.valid_bytes, boundaries[2]);
    EXPECT_EQ(replay.truncated_bytes, bytes.size() - boundaries[2]);
    wal.append("five");
  }
  WalReplay again;
  Wal::open(path, FsyncPolicy::Off, 0.025, &again);
  const std::vector<std::string> expected = {"one", "two", "five"};
  EXPECT_EQ(again.records, expected);
}

// --- Fault points ----------------------------------------------------------

TEST(WalTest, InjectedAppendFailureWritesNothing) {
  TempDir dir;
  FaultGuard guard;
  const std::string path = dir.file("log.wal");
  Wal wal = Wal::open(path, FsyncPolicy::Off);
  wal.append("kept");
  const std::uint64_t before = wal.size_bytes();
  util::fault::configure("persist.append=n1");
  EXPECT_THROW(wal.append("dropped"), PersistError);
  // persist.append fires BEFORE any byte is written: the file is clean, the
  // record simply never happened, and the log keeps working afterwards.
  EXPECT_EQ(wal.size_bytes(), before);
  util::fault::disable();
  wal.append("next");
  wal.close();
  WalReplay replay;
  Wal::open(path, FsyncPolicy::Off, 0.025, &replay);
  const std::vector<std::string> expected = {"kept", "next"};
  EXPECT_EQ(replay.records, expected);
}

TEST(WalTest, InjectedFsyncFailureThrowsButTheRecordIsOnFile) {
  TempDir dir;
  FaultGuard guard;
  const std::string path = dir.file("log.wal");
  Wal wal = Wal::open(path, FsyncPolicy::Always);
  util::fault::configure("persist.fsync=n1");
  // Under --fsync always the append throws (no ack may be sent), but the
  // write() itself completed — the record may legitimately survive, which
  // is exactly the "at most one unacked record" recovery window.
  EXPECT_THROW(wal.append("unacked"), PersistError);
  util::fault::disable();
  wal.close();
  WalReplay replay;
  Wal::open(path, FsyncPolicy::Off, 0.025, &replay);
  const std::vector<std::string> expected = {"unacked"};
  EXPECT_EQ(replay.records, expected);
}

// --- Session journal -------------------------------------------------------

TEST(JournalTest, FailsFastOnMissingDirNotADirAndHeldLock) {
  persist::JournalConfig missing;
  missing.dir = "/tmp/bagsched-no-such-dir-12345";
  try {
    SessionJournal journal(missing);
    FAIL() << "expected PersistError";
  } catch (const PersistError& error) {
    EXPECT_NE(std::string(error.what()).find("does not exist"),
              std::string::npos);
  }

  TempDir dir;
  write_file(dir.file("plainfile"), "x");
  persist::JournalConfig not_a_dir;
  not_a_dir.dir = dir.file("plainfile");
  EXPECT_THROW(SessionJournal{not_a_dir}, PersistError);

  persist::JournalConfig config;
  config.dir = dir.path();
  SessionJournal first(config);
  try {
    SessionJournal second(config);
    FAIL() << "expected the LOCK to be held";
  } catch (const PersistError& error) {
    EXPECT_NE(std::string(error.what()).find("locked"), std::string::npos);
  }
}

TEST(JournalTest, LockIsReleasedWhenTheJournalCloses) {
  TempDir dir;
  persist::JournalConfig config;
  config.dir = dir.path();
  {
    SessionJournal journal(config);
    journal.replay();
  }
  SessionJournal reopened(config);  // must not throw
  EXPECT_EQ(reopened.replay().sessions.size(), 0u);
}

TEST(JournalTest, ReplayTwiceThrows) {
  TempDir dir;
  persist::JournalConfig config;
  config.dir = dir.path();
  SessionJournal journal(config);
  journal.replay();
  EXPECT_THROW(journal.replay(), PersistError);
}

TEST(JournalTest, OpenCommitCloseReplayRoundTripsEverySession) {
  TempDir dir;
  persist::JournalConfig config;
  config.dir = dir.path();
  config.fsync = FsyncPolicy::Off;
  config.snapshot_every = 0;  // keep the raw record stream

  const auto trace = gen::churn_trace(tiny_churn(21));
  const online::SessionOptions tuning = cheap_tuning();
  online::ScheduleSession live(trace.initial, tuning);
  const std::uint64_t epoch = 0xDEADBEEFDEADBEEFULL;  // full-range u64

  std::string final_digest;
  {
    SessionJournal journal(config);
    journal.replay();
    journal.record_open(7, epoch, trace.initial, tuning, live.schedule());
    for (const model::Delta& delta : trace.deltas) {
      const api::SolveResult result = live.apply(delta);
      ASSERT_NE(result.status, api::SolveStatus::Infeasible);
      journal.record_commit(7, live.revision(), delta, live.schedule());
    }
    // A second session that opens and closes must not resurrect.
    journal.record_open(9, 42, trace.initial, tuning, live.schedule());
    journal.record_close(9);
    final_digest = persist::schedule_digest(live.schedule());
    const persist::JournalStats stats = journal.stats();
    EXPECT_EQ(stats.records_appended, trace.deltas.size() + 3);
    EXPECT_EQ(stats.live_sessions, 1u);
    journal.sync();
  }

  SessionJournal reopened(config);
  const persist::RecoveredState state = reopened.replay();
  EXPECT_EQ(state.records_replayed, trace.deltas.size() + 3);
  EXPECT_EQ(state.max_session_id, 9u);
  ASSERT_EQ(state.sessions.size(), 1u);
  const persist::RecoveredSession& recovered = state.sessions[0];
  EXPECT_EQ(recovered.session, 7u);
  EXPECT_EQ(recovered.epoch, epoch);
  EXPECT_EQ(recovered.revision, trace.deltas.size());
  EXPECT_EQ(recovered.digest, final_digest);
  EXPECT_EQ(persist::schedule_digest(recovered.schedule), final_digest);
  EXPECT_EQ(cache::Canonicalizer::exact(recovered.instance).fingerprint,
            cache::Canonicalizer::exact(live.instance()).fingerprint);
  EXPECT_EQ(recovered.tuning.solvers, tuning.solvers);
  EXPECT_DOUBLE_EQ(recovered.tuning.regret_bound, tuning.regret_bound);
  EXPECT_FALSE(recovered.last_delta_json.empty());
}

TEST(JournalTest, SnapshotCompactionPreservesTheRecoveredState) {
  TempDir dir;
  persist::JournalConfig config;
  config.dir = dir.path();
  config.fsync = FsyncPolicy::Off;
  config.snapshot_every = 0;

  const auto trace = gen::churn_trace(tiny_churn(22));
  const online::SessionOptions tuning = cheap_tuning();
  online::ScheduleSession live(trace.initial, tuning);
  std::uint64_t incremental_bytes = 0;
  {
    SessionJournal journal(config);
    journal.replay();
    journal.record_open(1, 11, trace.initial, tuning, live.schedule());
    for (const model::Delta& delta : trace.deltas) {
      ASSERT_NE(live.apply(delta).status, api::SolveStatus::Infeasible);
      journal.record_commit(1, live.revision(), delta, live.schedule());
    }
    incremental_bytes = journal.stats().journal_bytes;
    journal.snapshot();
    const persist::JournalStats stats = journal.stats();
    EXPECT_EQ(stats.snapshots, 1u);
    // Compaction rewrote the history as one snapshot record.
    EXPECT_LT(stats.journal_bytes, incremental_bytes);
    // The compacted journal keeps accepting appends.
    journal.record_open(2, 12, trace.initial, tuning, live.schedule());
  }

  SessionJournal reopened(config);
  const persist::RecoveredState state = reopened.replay();
  ASSERT_EQ(state.sessions.size(), 2u);
  EXPECT_EQ(state.max_session_id, 2u);
  const persist::RecoveredSession& one = state.sessions[0];
  EXPECT_EQ(one.session, 1u);
  EXPECT_EQ(one.epoch, 11u);
  EXPECT_EQ(one.revision, trace.deltas.size());
  EXPECT_EQ(one.digest, persist::schedule_digest(live.schedule()));
  EXPECT_EQ(cache::Canonicalizer::exact(one.instance).fingerprint,
            cache::Canonicalizer::exact(live.instance()).fingerprint);
  EXPECT_EQ(state.sessions[1].session, 2u);
  EXPECT_EQ(state.sessions[1].revision, 0u);
}

TEST(JournalTest, AutomaticCompactionTriggersEverySnapshotEveryRecords) {
  TempDir dir;
  persist::JournalConfig config;
  config.dir = dir.path();
  config.fsync = FsyncPolicy::Off;
  config.snapshot_every = 3;

  const auto trace = gen::churn_trace(tiny_churn(23));
  const online::SessionOptions tuning = cheap_tuning();
  online::ScheduleSession live(trace.initial, tuning);
  SessionJournal journal(config);
  journal.replay();
  journal.record_open(1, 1, trace.initial, tuning, live.schedule());
  for (const model::Delta& delta : trace.deltas) {
    ASSERT_NE(live.apply(delta).status, api::SolveStatus::Infeasible);
    journal.record_commit(1, live.revision(), delta, live.schedule());
  }
  // 1 open + 8 commits at snapshot_every=3 → at least two compactions.
  EXPECT_GE(journal.stats().snapshots, 2u);
  EXPECT_EQ(journal.stats().live_sessions, 1u);
}

TEST(JournalTest, InjectedSnapshotFailureKeepsTheOldJournalValid) {
  TempDir dir;
  FaultGuard guard;
  persist::JournalConfig config;
  config.dir = dir.path();
  config.fsync = FsyncPolicy::Off;
  config.snapshot_every = 0;

  const auto trace = gen::churn_trace(tiny_churn(24));
  const online::SessionOptions tuning = cheap_tuning();
  online::ScheduleSession live(trace.initial, tuning);
  {
    SessionJournal journal(config);
    journal.replay();
    journal.record_open(1, 5, trace.initial, tuning, live.schedule());
    util::fault::configure("persist.snapshot=n1");
    EXPECT_THROW(journal.snapshot(), PersistError);
    EXPECT_EQ(journal.stats().snapshot_failures, 1u);
    util::fault::disable();
  }
  SessionJournal reopened(config);
  EXPECT_EQ(reopened.replay().sessions.size(), 1u);
}

TEST(JournalTest, InjectedAppendFailurePreservesAppendBeforeAck) {
  TempDir dir;
  FaultGuard guard;
  persist::JournalConfig config;
  config.dir = dir.path();
  config.fsync = FsyncPolicy::Off;
  config.snapshot_every = 0;

  const auto trace = gen::churn_trace(tiny_churn(25));
  const online::SessionOptions tuning = cheap_tuning();
  online::ScheduleSession live(trace.initial, tuning);
  {
    SessionJournal journal(config);
    journal.replay();
    util::fault::configure("persist.append=n1");
    EXPECT_THROW(
        journal.record_open(1, 5, trace.initial, tuning, live.schedule()),
        PersistError);
    util::fault::disable();
    // The failed open never reached the journal: no shadow session, no
    // record. A retry under a fresh id goes through.
    EXPECT_EQ(journal.stats().live_sessions, 0u);
    EXPECT_EQ(journal.stats().records_appended, 0u);
    journal.record_open(2, 6, trace.initial, tuning, live.schedule());
  }
  SessionJournal reopened(config);
  const persist::RecoveredState state = reopened.replay();
  ASSERT_EQ(state.sessions.size(), 1u);
  EXPECT_EQ(state.sessions[0].session, 2u);
}

}  // namespace
}  // namespace bagsched
