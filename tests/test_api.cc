// Tests for the unified bagsched::api layer: registry lookup, option
// plumbing (seeds, time limits, cancellation), result equivalence with the
// legacy entry points, and the parallel portfolio runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "api/api.h"
#include "eptas/eptas.h"
#include "sched/bag_lpt.h"
#include "sched/exact.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "sched/lpt.h"
#include "sched/multifit.h"

namespace bagsched {
namespace {

using api::SolveOptions;
using api::SolveResult;
using api::SolveStatus;
using api::SolverRegistry;
using model::Instance;

// --- Registry --------------------------------------------------------------

TEST(ApiRegistryTest, ListsEveryExpectedSolver) {
  const auto names = SolverRegistry::global().names();
  for (const auto* expected :
       {"eptas", "exact", "milp", "lpt", "bag-lpt", "greedy-bags",
        "multifit", "local-search"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing solver " << expected;
  }
  EXPECT_GE(SolverRegistry::global().size(), 8u);
}

TEST(ApiRegistryTest, ExposesMetadata) {
  const auto& registry = SolverRegistry::global();
  EXPECT_EQ(registry.info("eptas").guarantee, api::Guarantee::Eptas);
  EXPECT_TRUE(registry.info("exact").exact);
  EXPECT_TRUE(registry.info("milp").exact);
  EXPECT_FALSE(registry.info("lpt").respects_bags);
  EXPECT_TRUE(registry.info("greedy-bags").respects_bags);
  for (const auto* solver : registry.all()) {
    EXPECT_FALSE(solver->info().summary.empty()) << solver->name();
    EXPECT_FALSE(solver->info().guarantee_text.empty()) << solver->name();
    EXPECT_FALSE(solver->info().typical_scale.empty()) << solver->name();
  }
}

TEST(ApiRegistryTest, UnknownNameThrowsWithKnownNames) {
  try {
    SolverRegistry::global().resolve("no-such-solver");
    FAIL() << "resolve should have thrown";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-solver"), std::string::npos);
    EXPECT_NE(message.find("eptas"), std::string::npos);  // lists the names
  }
  EXPECT_FALSE(SolverRegistry::global().contains("no-such-solver"));
  EXPECT_EQ(SolverRegistry::global().find("no-such-solver"), nullptr);
}

// --- Uniform infeasibility handling ---------------------------------------

TEST(ApiValidationTest, InfeasibleInstanceYieldsStructuredError) {
  // A bag with 4 jobs on 2 machines: no feasible schedule exists. Legacy
  // entry points disagree on what to do (eptas throws, heuristics vary);
  // through the api EVERY solver reports the same structured error.
  const Instance instance = Instance::from_vectors(
      {1.0, 1.0, 1.0, 1.0}, {0, 0, 0, 0}, /*num_machines=*/2);
  ASSERT_FALSE(instance.is_feasible());
  for (const auto* solver : SolverRegistry::global().all()) {
    const SolveResult result = solver->solve(instance);
    EXPECT_EQ(result.status, SolveStatus::Infeasible) << solver->name();
    EXPECT_FALSE(result.ok()) << solver->name();
    EXPECT_NE(result.error.find("infeasible"), std::string::npos)
        << solver->name() << ": " << result.error;
  }
}

// --- Equivalence with the legacy entry points ------------------------------

TEST(ApiEquivalenceTest, HeuristicsMatchLegacyEntryPoints) {
  const Instance instance = gen::by_name("uniform", 30, 6, 11);
  EXPECT_DOUBLE_EQ(api::solve("greedy-bags", instance).makespan,
                   sched::greedy_bags(instance).makespan(instance));
  EXPECT_DOUBLE_EQ(api::solve("bag-lpt", instance).makespan,
                   sched::bag_lpt(instance).makespan(instance));
  EXPECT_DOUBLE_EQ(api::solve("multifit", instance).makespan,
                   sched::multifit(instance).makespan(instance));
  EXPECT_DOUBLE_EQ(api::solve("lpt", instance).makespan,
                   sched::lpt(instance).makespan(instance));
  // seed = 0 keeps the legacy deterministic scan order.
  EXPECT_DOUBLE_EQ(api::solve("local-search", instance, {.seed = 0}).makespan,
                   sched::local_search(instance).makespan(instance));
}

TEST(ApiEquivalenceTest, EptasMatchesLegacyEntryPoint) {
  const Instance instance = gen::by_name("twopoint", 24, 6, 3);
  const auto legacy = eptas::eptas_schedule(instance, 0.5);
  const auto result = api::solve("eptas", instance, {.eps = 0.5});
  EXPECT_DOUBLE_EQ(result.makespan, legacy.makespan);
  EXPECT_EQ(api::stat_int(result.stats, "guesses"),
            legacy.stats.guesses_tried);
  EXPECT_TRUE(result.schedule_feasible);
}

TEST(ApiEquivalenceTest, ExactMatchesLegacyAndProvesOptimality) {
  const Instance instance = gen::by_name("uniform", 12, 3, 5);
  const auto legacy = sched::solve_exact(instance);
  ASSERT_TRUE(legacy.proven_optimal);
  const auto result = api::solve("exact", instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(result.makespan, legacy.makespan);
  EXPECT_DOUBLE_EQ(result.optimality_gap, 0.0);
}

TEST(ApiEquivalenceTest, MilpAgreesWithExactOnSmallInstances) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Instance instance = gen::by_name("replica", 9, 3, seed);
    const auto exact = api::solve("exact", instance);
    const auto milp = api::solve("milp", instance);
    ASSERT_TRUE(exact.proven_optimal);
    ASSERT_TRUE(milp.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(milp.makespan, exact.makespan, 1e-6) << "seed " << seed;
    EXPECT_TRUE(milp.schedule_feasible);
  }
}

// --- Options plumbing ------------------------------------------------------

TEST(ApiOptionsTest, SeedReachesGenerators) {
  const auto a = api::make_instance("uniform", 40, 8, {.seed = 9});
  const auto b = gen::by_name("uniform", 40, 8, 9);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (model::JobId j = 0; j < a.num_jobs(); ++j) {
    EXPECT_DOUBLE_EQ(a.job(j).size, b.job(j).size);
    EXPECT_EQ(a.job(j).bag, b.job(j).bag);
  }
}

TEST(ApiOptionsTest, SeedMakesLocalSearchReproducible) {
  const Instance instance = gen::by_name("uniform", 60, 8, 2);
  const auto first = api::solve("local-search", instance, {.seed = 42});
  const auto second = api::solve("local-search", instance, {.seed = 42});
  EXPECT_EQ(first.schedule.assignment(), second.schedule.assignment());
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
}

TEST(ApiOptionsTest, TimeLimitHonouredByExact) {
  // Far too large for a proof; the budget must cut the search off quickly.
  const Instance instance = gen::by_name("uniform", 60, 8, 1);
  SolveOptions options;
  options.time_limit_seconds = 0.2;
  const auto result = api::solve("exact", instance, options);
  EXPECT_TRUE(result.ok());  // incumbent is still returned
  EXPECT_TRUE(result.schedule_feasible);
  EXPECT_LT(result.wall_seconds, 5.0);
}

TEST(ApiOptionsTest, TimeLimitHonouredByMilp) {
  const Instance instance = gen::by_name("uniform", 30, 5, 1);
  SolveOptions options;
  options.time_limit_seconds = 0.2;
  const auto result = api::solve("milp", instance, options);
  EXPECT_TRUE(result.ok());  // incumbent or greedy fallback
  EXPECT_TRUE(result.schedule_feasible);
  EXPECT_LT(result.wall_seconds, 5.0);
}

TEST(ApiOptionsTest, PreCancelledTokenShortCircuits) {
  const Instance instance = gen::by_name("uniform", 40, 8, 1);
  util::CancellationToken token;
  token.request_stop();
  SolveOptions options;
  options.cancel = &token;
  for (const auto* name : {"exact", "eptas", "milp"}) {
    const auto result = api::solve(name, instance, options);
    EXPECT_EQ(result.status, SolveStatus::Cancelled) << name;
    EXPECT_TRUE(result.cancelled) << name;
  }
}

TEST(ApiOptionsTest, CancellationStopsRunningExactSearch) {
  const Instance instance = gen::by_name("uniform", 60, 8, 3);
  util::CancellationToken token;
  SolveOptions options;
  options.time_limit_seconds = 60.0;  // cancellation must beat this
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token.request_stop();
  });
  const auto result = api::solve("exact", instance, options);
  canceller.join();
  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(result.wall_seconds, 10.0);
  EXPECT_TRUE(result.ok());  // best incumbent so far still returned
}

// --- Cancellation contract -------------------------------------------------

// A solver that gets cancelled but still holds an incumbent: the api layer
// must fill makespan / schedule_feasible / gap for it (the documented
// SolveStatus::Cancelled contract).
class CancelWithIncumbentSolver final : public api::Solver {
 public:
  CancelWithIncumbentSolver()
      : Solver({.name = "test-cancel-with-incumbent",
                .summary = "test double",
                .guarantee = api::Guarantee::Heuristic,
                .guarantee_text = "none",
                .typical_scale = "test"}) {}

 protected:
  void run(const Instance& instance, const SolveOptions&,
           SolveResult& result) const override {
    result.schedule = sched::greedy_bags(instance);
    result.status = SolveStatus::Cancelled;
  }
};

TEST(ApiCancellationContractTest, CancelledWithIncumbentKeepsUsableFields) {
  const Instance instance = gen::by_name("uniform", 40, 8, 1);
  const auto result = CancelWithIncumbentSolver().solve(instance);
  EXPECT_EQ(result.status, SolveStatus::Cancelled);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.ok());  // ok() still means Optimal/Feasible
  // ... but the incumbent is fully usable:
  EXPECT_TRUE(result.schedule_feasible);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GE(result.makespan, result.lower_bound);
  EXPECT_GE(result.optimality_gap, 0.0);
}

TEST(ApiCancellationContractTest, ImproveReportsCancellationExactly) {
  const Instance instance = gen::by_name("uniform", 30, 6, 1);
  model::Schedule schedule = sched::greedy_bags(instance);
  sched::LocalSearchOptions options;
  const auto converged = sched::improve(instance, schedule, options);
  EXPECT_FALSE(converged.cancelled);
  // Re-scanning the converged schedule with an unfired token: convergence
  // is verified, no cancellation is reported (the pre-fix adapter would
  // have over-counted here whenever the token fired post-convergence).
  util::CancellationToken token;
  options.cancel = &token;
  const auto verified = sched::improve(instance, schedule, options);
  EXPECT_EQ(verified.accepted_moves, 0);
  EXPECT_FALSE(verified.cancelled);
  // A pre-fired token stops the scan before convergence can be verified.
  token.request_stop();
  const auto stopped = sched::improve(instance, schedule, options);
  EXPECT_TRUE(stopped.cancelled);
}

TEST(ApiCancellationContractTest, MilpBudgetTruncationIsNotCancellation) {
  // A node budget stopping the MILP must not read as a cancellation, even
  // with a token installed — only a fired token counts.
  const Instance instance = gen::by_name("uniform", 30, 5, 1);
  util::CancellationToken token;  // present but never fired
  SolveOptions options;
  options.cancel = &token;
  options.max_nodes = 1;
  const auto result = api::solve("milp", instance, options);
  EXPECT_FALSE(result.cancelled);
  EXPECT_TRUE(result.ok());  // greedy fallback still yields a schedule
}

TEST(ApiCancellationContractTest, PortfolioCancelledCountMatchesFlags) {
  const Instance instance = gen::by_name("uniform", 60, 8, 2);
  // Pre-fired external token: every member observes it, so cancelled_count
  // must equal the number of runs — no more, no fewer.
  util::CancellationToken token;
  token.request_stop();
  SolveOptions options;
  options.cancel = &token;
  const auto race = api::Portfolio({"exact", "eptas", "local-search"})
                        .solve(instance, options);
  int flagged = 0;
  for (const auto& run : race.runs) {
    if (run.cancelled) ++flagged;
  }
  EXPECT_EQ(flagged, 3);
  EXPECT_EQ(race.cancelled_count, flagged);

  // And with no token and no certificate racing: nothing may be counted.
  const auto calm =
      api::Portfolio({"greedy-bags", "bag-lpt"},
                     {.cancel_on_certificate = false})
          .solve(instance);
  EXPECT_EQ(calm.cancelled_count, 0);
  for (const auto& run : calm.runs) EXPECT_FALSE(run.cancelled);
}

// --- Portfolio -------------------------------------------------------------

TEST(ApiPortfolioTest, ReturnsMinimumMakespanOfFeasibleRuns) {
  const Instance instance = api::make_instance("uniform", 200, 16, {.seed = 4});
  // No certificate cancellation: every member runs to completion, so the
  // whole portfolio is deterministic and best == min over the runs.
  api::Portfolio portfolio(
      {"eptas", "local-search", "multifit", "bag-lpt", "greedy-bags"},
      {.cancel_on_certificate = false});
  const auto race = portfolio.solve(instance, {.eps = 0.5, .seed = 4});
  ASSERT_EQ(race.runs.size(), 5u);
  ASSERT_TRUE(race.ok());
  int feasible_runs = 0;
  for (std::size_t i = 0; i < race.runs.size(); ++i) {
    const auto& run = race.runs[i];
    EXPECT_EQ(run.solver, portfolio.solvers()[i]);
    ASSERT_TRUE(run.ok()) << run.solver;
    EXPECT_TRUE(run.schedule_feasible) << run.solver;
    EXPECT_GE(run.makespan, race.best.makespan) << run.solver;
    EXPECT_GT(run.wall_seconds, 0.0) << run.solver;
    ++feasible_runs;
  }
  EXPECT_GE(feasible_runs, 3);
  EXPECT_TRUE(race.best.schedule_feasible);
  // Per-solver telemetry survives the fan-out.
  EXPECT_GT(api::stat_int(race.runs[0].stats, "guesses"), 0);
  EXPECT_GE(api::stat_int(race.runs[1].stats, "moves"), 0);
}

TEST(ApiPortfolioTest, DeterministicGivenSeed) {
  const Instance instance = api::make_instance("uniform", 120, 10, {.seed = 6});
  api::Portfolio portfolio({"local-search", "multifit", "bag-lpt"},
                           {.cancel_on_certificate = false});
  const auto first = portfolio.solve(instance, {.seed = 6});
  const auto second = portfolio.solve(instance, {.seed = 6});
  EXPECT_EQ(first.best.solver, second.best.solver);
  EXPECT_DOUBLE_EQ(first.best.makespan, second.best.makespan);
  for (std::size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.runs[i].makespan, second.runs[i].makespan);
  }
}

TEST(ApiPortfolioTest, CertificateCancelsStragglersWithinTimeLimit) {
  // "exact" cannot finish 200 jobs inside its budget; once the EPTAS (or a
  // lower-bound-matching heuristic) certifies, the shared token must stop
  // it well before its time limit.
  const Instance instance = api::make_instance("uniform", 200, 16, {.seed = 4});
  api::Portfolio portfolio({"eptas", "exact", "greedy-bags"});
  SolveOptions options;
  options.eps = 0.5;
  options.time_limit_seconds = 20.0;
  const auto race = portfolio.solve(instance, options);
  ASSERT_TRUE(race.ok());
  const auto& exact_run = race.runs[1];
  EXPECT_EQ(exact_run.solver, "exact");
  // The straggler observed the stop (or, at worst, finished on its own
  // terms) — and in every case stayed within its time limit.
  EXPECT_LT(exact_run.wall_seconds, options.time_limit_seconds + 5.0);
  EXPECT_LT(race.wall_seconds, options.time_limit_seconds + 10.0);
  if (exact_run.cancelled) {
    EXPECT_GE(race.cancelled_count, 1);
  } else {
    EXPECT_TRUE(exact_run.proven_optimal || !exact_run.ok() ||
                exact_run.wall_seconds >= 0.0);
  }
}

TEST(ApiPortfolioTest, UnknownSolverNameThrowsAtConstruction) {
  EXPECT_THROW(api::Portfolio({"eptas", "bogus"}), std::invalid_argument);
}

TEST(ApiPortfolioTest, PreCancelledRunReportsCancelledNotInfeasible) {
  const Instance instance = gen::by_name("uniform", 40, 8, 1);
  util::CancellationToken token;
  token.request_stop();
  SolveOptions options;
  options.cancel = &token;
  const auto race = api::Portfolio({"exact", "eptas"}).solve(instance, options);
  EXPECT_FALSE(race.ok());
  EXPECT_EQ(race.best.status, SolveStatus::Cancelled);
  EXPECT_TRUE(race.best.cancelled);
}

TEST(ApiPortfolioTest, InfeasibleInstancePropagatesStructuredError) {
  const Instance instance = Instance::from_vectors(
      {1.0, 1.0, 1.0}, {0, 0, 0}, /*num_machines=*/2);
  const auto race = api::Portfolio().solve(instance);
  EXPECT_FALSE(race.ok());
  EXPECT_EQ(race.best.status, SolveStatus::Infeasible);
  EXPECT_FALSE(race.best.error.empty());
}

}  // namespace
}  // namespace bagsched
