// Tests for the column-generated master MILP (paper §3 constraints in
// aggregated form).
#include <gtest/gtest.h>

#include "eptas/classify.h"
#include "eptas/milp_model.h"
#include "eptas/pattern.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using eptas::MasterSolution;
using model::Instance;

struct Prepared {
  Instance scaled;
  eptas::Classification cls;
  eptas::Transformed transformed;
  eptas::PatternSpace space;
};

std::optional<Prepared> prepare(const Instance& instance, double eps,
                                double guess) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  Instance scaled =
      Instance::from_vectors(sizes, bags, instance.num_machines());
  const auto cls = eptas::classify(scaled, eps, EptasConfig{});
  if (!cls) return std::nullopt;
  auto transformed = eptas::transform(scaled, *cls);
  auto space = eptas::build_pattern_space(transformed, *cls);
  return Prepared{std::move(scaled), *cls, std::move(transformed),
                  std::move(space)};
}

void check_master_invariants(const Prepared& prep,
                             const MasterSolution& master) {
  const int m = prep.transformed.instance.num_machines();
  // R1: total multiplicity <= m.
  int total = 0;
  for (int count : master.multiplicity) total += count;
  EXPECT_LE(total, m);

  // R2/R3 coverage: slots >= jobs for every size-restricted class.
  for (int i = 0; i < prep.space.num_priority(); ++i) {
    const auto& pbag = prep.space.priority_bags[static_cast<std::size_t>(i)];
    for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
      int slots = 0;
      for (std::size_t p = 0; p < master.patterns.size(); ++p) {
        if (master.patterns[p].pchoice[static_cast<std::size_t>(i)] ==
            static_cast<int>(s)) {
          slots += master.multiplicity[p];
        }
      }
      EXPECT_GE(slots, pbag.counts[s])
          << "priority bag " << i << " size " << s;
    }
  }
  for (int s = 0; s < prep.space.num_x_sizes(); ++s) {
    int slots = 0;
    for (std::size_t p = 0; p < master.patterns.size(); ++p) {
      slots += master.multiplicity[p] *
               master.patterns[p].xcount[static_cast<std::size_t>(s)];
    }
    EXPECT_GE(slots, prep.space.x_avail[static_cast<std::size_t>(s)]);
  }

  // Heights within T'.
  for (const auto& pattern : master.patterns) {
    EXPECT_LE(pattern.height, prep.cls.target_height + 1e-9);
  }
}

TEST(MasterTest, SolvesPlantedAtOpt) {
  const auto planted = gen::planted({.num_machines = 6,
                                     .num_bags = 14,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 5,
                                     .target = 1.0,
                                     .seed = 1});
  const auto prep = prepare(planted.instance, 0.5, planted.opt);
  ASSERT_TRUE(prep.has_value());
  const auto master = eptas::solve_master(prep->space, prep->transformed,
                                          prep->cls, EptasConfig{});
  ASSERT_TRUE(master.has_value());
  check_master_invariants(*prep, *master);
  EXPECT_GT(master->stats.columns, 0);
}

TEST(MasterTest, SolvesAcrossFamiliesAtGreedyBound) {
  for (const auto& family : {"twopoint", "replica", "figure1"}) {
    const Instance instance = gen::by_name(family, 30, 6, 5);
    // A generous guess (greedy-level) should be solvable.
    const double guess = 1.6 * model::combined_lower_bound(instance);
    const auto prep = prepare(instance, 0.5, guess);
    if (!prep) continue;  // classification may reject the guess; fine
    const auto master = eptas::solve_master(prep->space, prep->transformed,
                                            prep->cls, EptasConfig{});
    if (master) check_master_invariants(*prep, *master);
  }
}

TEST(MasterTest, InfeasibleWhenAreaExceeds) {
  // Guess far below OPT usually dies in classify; craft a case where
  // classification passes but the area row fails: many small jobs.
  std::vector<double> sizes(60, 0.2);
  std::vector<model::BagId> bags;
  for (int i = 0; i < 60; ++i) bags.push_back(i % 20);
  const Instance instance = Instance::from_vectors(sizes, bags, 4);
  // Area = 12, m = 4 -> OPT >= 3. Guess 2.9: scaled area slightly above m.
  const auto prep = prepare(instance, 0.5, 2.0);
  if (!prep) GTEST_SKIP();  // classify already rejected: equally fine
  const auto master = eptas::solve_master(prep->space, prep->transformed,
                                          prep->cls, EptasConfig{});
  EXPECT_FALSE(master.has_value());
}

TEST(MasterTest, Figure1MasterSpreadsLargeJobs) {
  // At guess = OPT the master must not stack two 2/3-jobs on one machine
  // (that pattern's height 4/3 exceeds nothing, but coverage of the tight
  // bag forces spreading via the area row... verify structurally: every
  // pattern holds at most one x slot of the large size).
  const auto planted = gen::figure1({.num_machines = 6, .scale = 1.0,
                                     .seed = 3});
  const auto prep = prepare(planted.instance, 0.4, 1.02 * planted.opt);
  ASSERT_TRUE(prep.has_value());
  const auto master = eptas::solve_master(prep->space, prep->transformed,
                                          prep->cls, EptasConfig{});
  ASSERT_TRUE(master.has_value());
  check_master_invariants(*prep, *master);
  // T' at eps=0.4 is 1.96: two 2/3-jobs (1.33) would fit the height, but
  // the free-area row (small jobs need m * 1/3) forbids it:
  // sum h_p x_p <= m*T' - area(smalls).
  double worst_height = 0.0;
  for (const auto& pattern : master->patterns) {
    worst_height = std::max(worst_height, pattern.height);
  }
  EXPECT_LE(worst_height, 1.4);  // one large job (rounded) per machine
}

TEST(MasterTest, EmptyMlInstanceTriviallySolvable) {
  // Only small jobs: the master has no coverage rows; empty pattern wins.
  std::vector<double> sizes(20, 0.01);
  std::vector<model::BagId> bags;
  for (int i = 0; i < 20; ++i) bags.push_back(i % 10);
  const Instance instance = Instance::from_vectors(sizes, bags, 4);
  const auto prep = prepare(instance, 0.5, 1.0);
  ASSERT_TRUE(prep.has_value());
  EXPECT_EQ(prep->space.num_priority(), 0);
  EXPECT_EQ(prep->space.num_x_sizes(), 0);
  const auto master = eptas::solve_master(prep->space, prep->transformed,
                                          prep->cls, EptasConfig{});
  ASSERT_TRUE(master.has_value());
}

}  // namespace
}  // namespace bagsched
