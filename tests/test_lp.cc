// Tests for the dense two-phase simplex: optimality on known LPs,
// infeasibility/unboundedness detection, bounds, duals, and a randomized
// cross-check against feasibility of the returned point.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/prng.h"

namespace bagsched {
namespace {

using lp::Model;
using lp::Objective;
using lp::Sense;
using lp::SolveStatus;

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> opt 36 at (2, 6).
  Model model;
  model.set_objective(Objective::Maximize);
  const int x = model.add_variable(3.0);
  const int y = model.add_variable(5.0);
  model.add_constraint({{x, 1.0}}, Sense::LessEqual, 4.0);
  model.add_constraint({{y, 2.0}}, Sense::LessEqual, 12.0);
  model.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::LessEqual, 18.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 36.0, 1e-7);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(SimplexTest, SimpleMinimizationWithGreaterEqual) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2  -> opt 20 at (10, 0)? No:
  // cost(2,8) = 4+24=28, cost(10,0)=20 -> optimum (10,0), value 20.
  Model model;
  const int x = model.add_variable(2.0);
  const int y = model.add_variable(3.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 10.0);
  model.add_constraint({{x, 1.0}}, Sense::GreaterEqual, 2.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 20.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 4, x <= 1  -> x=0, y=2, obj 2.
  Model model;
  const int x = model.add_variable(1.0, 0.0, 1.0);
  const int y = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}, {y, 2.0}}, Sense::Equal, 4.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model model;
  const int x = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}}, Sense::LessEqual, 1.0);
  model.add_constraint({{x, 1.0}}, Sense::GreaterEqual, 2.0);
  EXPECT_EQ(lp::solve(model).status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model model;
  model.set_objective(Objective::Maximize);
  const int x = model.add_variable(1.0);
  model.add_constraint({{x, -1.0}}, Sense::LessEqual, 0.0);  // -x <= 0
  EXPECT_EQ(lp::solve(model).status, SolveStatus::Unbounded);
}

TEST(SimplexTest, RespectsVariableBounds) {
  // max x + y with 1 <= x <= 3, y <= 2.
  Model model;
  model.set_objective(Objective::Maximize);
  const int x = model.add_variable(1.0, 1.0, 3.0);
  const int y = model.add_variable(1.0, 0.0, 2.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(x)], 3.0, 1e-7);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(y)], 2.0, 1e-7);
}

TEST(SimplexTest, LowerBoundShiftWorks) {
  // min x s.t. x >= 5 via bound -> x = 5.
  Model model;
  const int x = model.add_variable(1.0, 5.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(x)], 5.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // x - y <= -2  (i.e. y >= x + 2), min y -> x=0, y=2.
  Model model;
  const int x = model.add_variable(0.0);
  const int y = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::LessEqual, -2.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-7);
}

TEST(SimplexTest, DualsSatisfyStrongDuality) {
  // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6.
  Model model;
  const int x = model.add_variable(2.0);
  const int y = model.add_variable(3.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 4.0);
  model.add_constraint({{x, 1.0}, {y, 3.0}}, Sense::GreaterEqual, 6.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  ASSERT_EQ(result.duals.size(), 2u);
  // Strong duality: b^T y == optimal objective.
  const double dual_objective =
      4.0 * result.duals[0] + 6.0 * result.duals[1];
  EXPECT_NEAR(dual_objective, result.objective, 1e-6);
  // Dual feasibility for a min problem with >= rows: duals >= 0 and
  // A^T y <= c.
  EXPECT_GE(result.duals[0], -1e-9);
  EXPECT_GE(result.duals[1], -1e-9);
  EXPECT_LE(result.duals[0] + result.duals[1], 2.0 + 1e-7);
  EXPECT_LE(result.duals[0] + 3.0 * result.duals[1], 3.0 + 1e-7);
}

TEST(SimplexTest, DualSignForLessEqualRows) {
  // max x s.t. x <= 7: dual of the row (in the minimized problem) is -1.
  Model model;
  model.set_objective(Objective::Maximize);
  const int x = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}}, Sense::LessEqual, 7.0);
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 7.0, 1e-7);
  EXPECT_NEAR(result.duals[0], -1.0, 1e-7);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Klee-Minty-flavoured degenerate LP; Bland fallback must terminate it.
  Model model;
  model.set_objective(Objective::Maximize);
  std::vector<int> vars;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    vars.push_back(model.add_variable(std::pow(2.0, n - 1 - i)));
  }
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < i; ++j) {
      terms.emplace_back(vars[static_cast<std::size_t>(j)],
                         std::pow(2.0, i - j + 1));
    }
    terms.emplace_back(vars[static_cast<std::size_t>(i)], 1.0);
    model.add_constraint(std::move(terms), Sense::LessEqual,
                         std::pow(5.0, i + 1));
  }
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, std::pow(5.0, n), 1e-4);
}

class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, ReturnedPointIsFeasibleAndNoWorseThanSamples) {
  // Property: on random feasible-by-construction LPs, the simplex returns a
  // feasible point whose objective beats any random feasible sample.
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  Model model;
  const int n = 5;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(model.add_variable(rng.uniform_real(-3.0, 3.0)));
  }
  // Rows a.x <= b with a >= 0 and b > 0: x = 0 is always feasible.
  for (int r = 0; r < 6; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i) {
      terms.emplace_back(vars[static_cast<std::size_t>(i)],
                         rng.uniform_real(0.0, 2.0));
    }
    model.add_constraint(std::move(terms), Sense::LessEqual,
                         rng.uniform_real(1.0, 5.0));
  }
  // Box to keep it bounded.
  for (int i = 0; i < n; ++i) {
    model.mutable_variable(vars[static_cast<std::size_t>(i)]).upper = 10.0;
  }
  const auto result = lp::solve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_LE(model.max_violation(result.x), 1e-6);
  // Random feasible samples cannot beat the optimum (minimization).
  for (int s = 0; s < 50; ++s) {
    std::vector<double> sample(static_cast<std::size_t>(n));
    for (auto& value : sample) value = rng.uniform_real(0.0, 1.0);
    if (model.max_violation(sample) <= 0.0) {
      EXPECT_GE(model.objective_value(sample), result.objective - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(1, 13));

/// Knapsack-relaxation model used by the warm-start tests: maximize value
/// within one capacity row, binaries relaxed to [0, 1].
Model knapsack_model() {
  Model model;
  model.set_objective(Objective::Maximize);
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 4; ++i) {
    row.emplace_back(model.add_variable(values[i], 0.0, 1.0), weights[i]);
  }
  model.add_constraint(std::move(row), Sense::LessEqual, 14.0);
  return model;
}

TEST(WarmStartTest, MatchesColdSolveAfterBoundTightening) {
  Model model = knapsack_model();
  const auto root = lp::solve(model);
  ASSERT_EQ(root.status, SolveStatus::Optimal);
  EXPECT_NEAR(root.objective, 22.0, 1e-9);

  // Branch-like tightenings; warm and cold must agree on every one.
  const std::vector<std::pair<int, std::pair<double, double>>> branches = {
      {1, {0.0, 0.0}},  // fix x1 = 0
      {1, {1.0, 1.0}},  // fix x1 = 1
      {2, {0.0, 0.0}},  // fix x2 = 0
      {0, {1.0, 1.0}},  // fix x0 = 1
  };
  for (const auto& [var, bounds] : branches) {
    Model child = knapsack_model();
    child.mutable_variable(var).lower = bounds.first;
    child.mutable_variable(var).upper = bounds.second;
    const auto cold = lp::solve(child);
    const auto warm = lp::solve(child, {}, &root.basis);
    ASSERT_EQ(cold.status, SolveStatus::Optimal) << "var " << var;
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << "var " << var;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-9) << "var " << var;
    EXPECT_LE(child.max_violation(warm.x), 1e-6);
  }
}

TEST(WarmStartTest, StaleBasisFallsBackToColdStart) {
  Model model = knapsack_model();
  lp::Basis garbage;
  garbage.columns = {2};  // wrong arity for the standardized rows is fine,
                          // but make it right-sized and still nonsense:
  garbage.columns.assign(1, 99);
  garbage.at_upper.assign(64, 0);
  const auto result = lp::solve(model, {}, &garbage);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 22.0, 1e-9);
}

TEST(IncrementalSimplexTest, MatchesColdAcrossBoundChanges) {
  Model model = knapsack_model();
  lp::IncrementalSimplex incremental(model);
  const auto root = incremental.resolve(model);
  ASSERT_EQ(root.status, SolveStatus::Optimal);
  EXPECT_NEAR(root.objective, 22.0, 1e-9);

  // A branch-and-bound-like walk: tighten, resolve, undo, repeat. Every
  // resolve must match a from-scratch solve of the same bounds.
  util::Xoshiro256 rng(17);
  for (int step = 0; step < 40; ++step) {
    const int var = static_cast<int>(rng.uniform_int(0, 3));
    const double fixed = rng.uniform_int(0, 1) == 0 ? 0.0 : 1.0;
    const double old_lower = model.variable(var).lower;
    const double old_upper = model.variable(var).upper;
    model.mutable_variable(var).lower = fixed;
    model.mutable_variable(var).upper = fixed;
    const auto warm = incremental.resolve(model);
    const auto cold = lp::solve(model);
    ASSERT_EQ(warm.status, cold.status) << "step " << step;
    if (cold.status == SolveStatus::Optimal) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-9) << "step " << step;
      EXPECT_LE(model.max_violation(warm.x), 1e-6) << "step " << step;
    }
    model.mutable_variable(var).lower = old_lower;
    model.mutable_variable(var).upper = old_upper;
  }
  // State survives the walk: the root bounds re-solve to the root optimum.
  const auto again = incremental.resolve(model);
  ASSERT_EQ(again.status, SolveStatus::Optimal);
  EXPECT_NEAR(again.objective, 22.0, 1e-9);
}

TEST(IncrementalSimplexTest, RecoversAfterInfeasibleNode) {
  // x + y = 1; fixing both to 1 is infeasible, and the solver must keep
  // working for the next (feasible) node afterwards.
  Model model;
  const int x = model.add_variable(1.0, 0.0, 1.0);
  const int y = model.add_variable(2.0, 0.0, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::Equal, 1.0);
  lp::IncrementalSimplex incremental(model);
  ASSERT_EQ(incremental.resolve(model).status, SolveStatus::Optimal);

  model.mutable_variable(x).lower = 1.0;
  model.mutable_variable(y).lower = 1.0;
  EXPECT_EQ(incremental.resolve(model).status, SolveStatus::Infeasible);

  model.mutable_variable(y).lower = 0.0;
  model.mutable_variable(y).upper = 0.0;
  const auto result = incremental.resolve(model);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);  // x = 1, y = 0
}

}  // namespace
}  // namespace bagsched
