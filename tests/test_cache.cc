// Tests for the canonicalizing solve cache: fingerprint invariance under
// job permutation and bag relabeling, eps-rounded collisions, schedule
// remapping across fingerprint-equal twins, sharded-LRU byte-budget
// eviction, concurrent hit/miss hammering, and the SchedulingService
// integration (submit-time hits, cache_mode semantics, single-flight
// deduplication observable through service telemetry).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "api/api.h"

namespace bagsched {
namespace {

using api::CacheMode;
using api::SchedulingService;
using api::SolveRequest;
using api::SolveStatus;
using cache::CacheKey;
using cache::Canonicalizer;
using cache::Fingerprint;
using cache::SolveCache;

model::Instance base_instance(int num_jobs = 60, int num_machines = 6,
                              std::uint64_t seed = 7) {
  return gen::by_name("uniform", num_jobs, num_machines, seed);
}

/// The same problem with jobs re-ordered by `job_perm` and bag l renamed
/// to bag_perm[l] — the symmetries the canonicalizer must erase.
model::Instance permuted_twin(const model::Instance& instance,
                              std::uint64_t seed) {
  std::vector<int> job_perm(static_cast<std::size_t>(instance.num_jobs()));
  std::iota(job_perm.begin(), job_perm.end(), 0);
  std::vector<model::BagId> bag_perm(
      static_cast<std::size_t>(instance.num_bags()));
  std::iota(bag_perm.begin(), bag_perm.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(job_perm.begin(), job_perm.end(), rng);
  std::shuffle(bag_perm.begin(), bag_perm.end(), rng);
  std::vector<model::Job> jobs;
  jobs.reserve(job_perm.size());
  for (const int old_id : job_perm) {
    const model::Job& job = instance.job(old_id);
    jobs.push_back(model::Job{
        .id = 0,  // re-numbered by the Instance constructor
        .size = job.size,
        .bag = bag_perm[static_cast<std::size_t>(job.bag)]});
  }
  return model::Instance(std::move(jobs), instance.num_machines(),
                         instance.num_bags());
}

/// All sizes multiplied by `factor`: the exact fingerprint changes, but
/// every lower bound scales by the same factor, so the eps-rounded
/// (size / lower_bound) grid indices — and the rounded fingerprint — are
/// unchanged.
model::Instance rescaled_twin(const model::Instance& instance,
                              double factor) {
  std::vector<model::Job> jobs;
  jobs.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const model::Job& job : instance.jobs()) {
    jobs.push_back(
        model::Job{.id = 0, .size = job.size * factor, .bag = job.bag});
  }
  return model::Instance(std::move(jobs), instance.num_machines(),
                         instance.num_bags());
}

SolveRequest cached_request(const model::Instance& instance,
                            const char* solver,
                            CacheMode mode = CacheMode::ReadWrite) {
  api::SolveOptions options;
  options.cache_mode = mode;
  return api::make_request(instance, options, {solver});
}

// --- Canonical fingerprints -------------------------------------------------

TEST(CanonicalizerTest, InvariantUnderJobPermutationAndBagRelabeling) {
  const auto instance = base_instance();
  const auto form = Canonicalizer::exact(instance);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto twin = permuted_twin(instance, seed);
    EXPECT_EQ(form.fingerprint, Canonicalizer::exact(twin).fingerprint)
        << "permutation seed " << seed;
  }
}

TEST(CanonicalizerTest, SensitiveToSizesMachinesAndBagStructure) {
  const auto instance = base_instance();
  const auto fingerprint = Canonicalizer::exact(instance).fingerprint;

  // One size nudged.
  std::vector<model::Job> jobs(instance.jobs());
  jobs.front().size += 0.5;
  const model::Instance resized(jobs, instance.num_machines(),
                                instance.num_bags());
  EXPECT_NE(fingerprint, Canonicalizer::exact(resized).fingerprint);

  // Same jobs, one machine more.
  const model::Instance more_machines(instance.jobs(),
                                      instance.num_machines() + 1,
                                      instance.num_bags());
  EXPECT_NE(fingerprint, Canonicalizer::exact(more_machines).fingerprint);

  // Two jobs' bags swapped (different partition, same sizes) — only
  // meaningful when they sit in different bags.
  jobs = instance.jobs();
  auto other =
      std::find_if(jobs.begin() + 1, jobs.end(), [&](const model::Job& job) {
        return job.bag != jobs.front().bag;
      });
  ASSERT_NE(other, jobs.end());
  std::swap(jobs.front().bag, other->bag);
  // Swapping bags of equal-size jobs is itself a symmetry; make them
  // distinguishable first.
  if (jobs.front().size == other->size) jobs.front().size += 0.25;
  const model::Instance rebagged(jobs, instance.num_machines(),
                                 instance.num_bags());
  EXPECT_NE(fingerprint, Canonicalizer::exact(rebagged).fingerprint);
}

TEST(CanonicalizerTest, EmptyBagsDoNotAffectTheFingerprint) {
  const auto instance = base_instance(30, 5, 11);
  // Same jobs, but declared over twice as many bag ids (upper half empty).
  const model::Instance padded(instance.jobs(), instance.num_machines(),
                               instance.num_bags() * 2);
  EXPECT_EQ(Canonicalizer::exact(instance).fingerprint,
            Canonicalizer::exact(padded).fingerprint);
}

TEST(CanonicalizerTest, RoundedCollapsesUniformRescaling) {
  const auto instance = base_instance();
  const auto twin = rescaled_twin(instance, 1.37);
  EXPECT_NE(Canonicalizer::exact(instance).fingerprint,
            Canonicalizer::exact(twin).fingerprint);
  EXPECT_EQ(Canonicalizer::rounded(instance, 0.5).fingerprint,
            Canonicalizer::rounded(twin, 0.5).fingerprint);
  // Different eps = different grid = different key space.
  EXPECT_NE(Canonicalizer::rounded(instance, 0.5).fingerprint,
            Canonicalizer::rounded(instance, 0.25).fingerprint);
}

TEST(CanonicalizerTest, RemapCarriesScheduleAcrossTwins) {
  const auto instance = base_instance(40, 5, 3);
  const auto twin = permuted_twin(instance, 99);
  const auto result = api::solve("greedy-bags", instance);
  ASSERT_TRUE(result.schedule_feasible);

  const auto from = Canonicalizer::exact(instance);
  const auto to = Canonicalizer::exact(twin);
  ASSERT_EQ(from.fingerprint, to.fingerprint);
  const auto remapped = cache::remap_schedule(result.schedule, from, to);
  EXPECT_TRUE(model::validate(twin, remapped).ok());
  EXPECT_DOUBLE_EQ(remapped.makespan(twin), result.makespan);
}

TEST(CanonicalizerTest, RemapJobsRejectsShapeMismatch) {
  const auto instance = base_instance(10, 3, 1);
  const auto result = api::solve("greedy-bags", instance);
  std::vector<model::JobId> order(10);
  std::iota(order.begin(), order.end(), 0);
  std::vector<model::JobId> shorter(order.begin(), order.end() - 1);
  EXPECT_THROW(model::remap_jobs(result.schedule, order, shorter),
               std::invalid_argument);
}

// --- Sharded LRU ------------------------------------------------------------

CacheKey key_of(std::uint64_t tag) {
  return CacheKey{Fingerprint{tag * 0x9e3779b9ULL + 1, tag}, "test", 0,
                  false};
}

api::SolveResult small_result(double makespan) {
  api::SolveResult result;
  result.solver = "test";
  result.status = SolveStatus::Feasible;
  result.makespan = makespan;
  result.schedule_feasible = true;
  return result;
}

TEST(SolveCacheTest, EvictsLeastRecentlyUsedAtByteBudget) {
  const std::size_t entry_bytes =
      cache::approx_result_bytes(small_result(1.0));
  // Room for exactly two entries in a single shard.
  SolveCache cache({.num_shards = 1, .byte_budget = 2 * entry_bytes + 8});
  cache.insert(key_of(1), small_result(1.0));
  cache.insert(key_of(2), small_result(2.0));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(3), small_result(3.0));

  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(SolveCacheTest, ReplacingAKeyKeepsTheByteAccountingTight) {
  SolveCache cache({.num_shards = 1, .byte_budget = 1 << 20});
  for (int i = 0; i < 10; ++i) {
    cache.insert(key_of(42), small_result(static_cast<double>(i)));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, cache::approx_result_bytes(small_result(9.0)));
  const auto hit = cache.lookup(key_of(42));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->makespan, 9.0);
}

TEST(SolveCacheTest, OversizedEntriesAreSkippedNotLooped) {
  api::SolveResult big = small_result(1.0);
  big.error.assign(4096, 'x');
  SolveCache cache({.num_shards = 1, .byte_budget = 256});
  cache.insert(key_of(1), big);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.oversized, 1u);
}

TEST(SolveCacheTest, ConcurrentHammeringKeepsInvariants) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint64_t kKeySpace = 64;
  SolveCache cache({.num_shards = 8, .byte_budget = 1 << 18});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t tag = rng() % kKeySpace;
        if (rng() % 2 == 0) {
          cache.insert(key_of(tag),
                       small_result(static_cast<double>(tag)));
        } else if (const auto hit = cache.lookup(key_of(tag))) {
          // Entries are immutable once stored: a hit is always coherent.
          EXPECT_DOUBLE_EQ(hit->makespan, static_cast<double>(tag));
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread -
                stats.insertions);
  EXPECT_LE(stats.bytes, cache.byte_budget());
  EXPECT_LE(stats.entries, kKeySpace);
}

// --- Service integration ----------------------------------------------------

TEST(ServiceCacheTest, RepeatRequestIsServedFromTheCache) {
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance();
  const auto first =
      service.submit(cached_request(instance, "greedy-bags")).wait();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(api::stat_bool(first.stats, "cache_stored"));
  EXPECT_FALSE(api::stat_bool(first.stats, "cache_hit"));

  const auto second =
      service.submit(cached_request(instance, "greedy-bags")).wait();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(api::stat_bool(second.stats, "cache_hit"));
  EXPECT_DOUBLE_EQ(second.makespan, first.makespan);
  EXPECT_EQ(second.schedule.assignment(), first.schedule.assignment());

  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.dedup_shared, 0u);
  EXPECT_GE(service.cache_stats().entries, 1u);
}

TEST(ServiceCacheTest, PermutedTwinHitsAndRemapsFeasibly) {
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance(50, 5, 21);
  const auto twin = permuted_twin(instance, 5);
  const auto first =
      service.submit(cached_request(instance, "greedy-bags")).wait();
  ASSERT_TRUE(first.ok());
  const auto second =
      service.submit(cached_request(twin, "greedy-bags")).wait();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(api::stat_bool(second.stats, "cache_hit"));
  // Exact twins: the remapped schedule is feasible FOR THE TWIN and has
  // the identical makespan.
  EXPECT_TRUE(model::validate(twin, second.schedule).ok());
  EXPECT_DOUBLE_EQ(second.makespan, first.makespan);
}

TEST(ServiceCacheTest, CacheModeOffAndReadNeverStore) {
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance();
  // Off: no participation at all.
  service.submit(cached_request(instance, "greedy-bags", CacheMode::Off))
      .wait();
  EXPECT_EQ(service.cache_stats().entries, 0u);
  // Read: lookups happen, stores don't.
  const auto read_only =
      service.submit(cached_request(instance, "greedy-bags", CacheMode::Read))
          .wait();
  EXPECT_FALSE(api::stat_bool(read_only.stats, "cache_hit"));
  EXPECT_FALSE(api::stat_bool(read_only.stats, "cache_stored"));
  EXPECT_EQ(service.cache_stats().entries, 0u);
  // ReadWrite populates; a later Read request is served.
  service.submit(cached_request(instance, "greedy-bags")).wait();
  const auto served =
      service.submit(cached_request(instance, "greedy-bags", CacheMode::Read))
          .wait();
  EXPECT_TRUE(api::stat_bool(served.stats, "cache_hit"));
}

TEST(ServiceCacheTest, DifferentSeedsDoNotShareLocalSearchResults) {
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance(80, 8, 3);
  api::SolveOptions options;
  options.cache_mode = CacheMode::ReadWrite;
  options.seed = 1;
  service.submit(api::make_request(instance, options, {"local-search"}))
      .wait();
  options.seed = 2;
  const auto other =
      service.submit(api::make_request(instance, options, {"local-search"}))
          .wait();
  // The options digest separates the keys: no hit across seeds.
  EXPECT_FALSE(api::stat_bool(other.stats, "cache_hit"));
}

TEST(ServiceCacheTest, RoundedHitServesRescaledTwinForEptas) {
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance(60, 6, 17);
  const auto twin = rescaled_twin(instance, 1.61);
  api::SolveOptions options;
  options.cache_mode = CacheMode::ReadWrite;
  options.eps = 0.5;
  const auto first =
      service.submit(api::make_request(instance, options, {"eptas"})).wait();
  ASSERT_TRUE(first.ok());
  const auto second =
      service.submit(api::make_request(twin, options, {"eptas"})).wait();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(api::stat_bool(second.stats, "cache_hit_rounded"));
  EXPECT_EQ(second.status, SolveStatus::Feasible);
  EXPECT_FALSE(second.proven_optimal);
  // The schedule is re-evaluated against the twin: feasible, and the
  // reported makespan is the twin's true makespan of that schedule.
  EXPECT_TRUE(model::validate(twin, second.schedule).ok());
  EXPECT_DOUBLE_EQ(second.makespan, second.schedule.makespan(twin));
  EXPECT_EQ(service.stats().cache_rounded_hits, 1u);
}

TEST(ServiceCacheTest, ExactSolversNeverTakeRoundedHits) {
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance(14, 4, 29);
  const auto twin = rescaled_twin(instance, 1.61);
  api::SolveOptions options;
  options.cache_mode = CacheMode::ReadWrite;
  const auto first =
      service.submit(api::make_request(instance, options, {"exact"})).wait();
  ASSERT_TRUE(first.ok());
  const auto second =
      service.submit(api::make_request(twin, options, {"exact"})).wait();
  ASSERT_TRUE(second.ok());
  // Different exact fingerprint, rounded keys disabled for exact solvers:
  // the twin is solved on its own — and proves its own optimum.
  EXPECT_FALSE(api::stat_bool(second.stats, "cache_hit"));
  EXPECT_EQ(service.stats().cache_rounded_hits, 0u);
  EXPECT_TRUE(second.proven_optimal);
}

TEST(ServiceCacheTest, SingleFlightSharesOneSolveAcrossABatch) {
  // One slot, one batch of 8 identical requests: the batch is admitted
  // atomically before anything dispatches, so exactly one leader solves
  // and 7 followers share its result.
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  const auto instance =
      std::make_shared<const model::Instance>(base_instance(80, 8, 41));
  std::vector<SolveRequest> batch;
  for (int i = 0; i < 8; ++i) {
    api::SolveOptions options;
    options.cache_mode = CacheMode::ReadWrite;
    batch.push_back(api::make_request(instance, options, {"local-search"}));
  }
  auto handles = service.submit_batch(std::move(batch));
  int shared_count = 0;
  double makespan = -1.0;
  for (auto& handle : handles) {
    const auto& result = handle.wait();
    ASSERT_TRUE(result.ok());
    if (makespan < 0.0) makespan = result.makespan;
    EXPECT_DOUBLE_EQ(result.makespan, makespan);
    if (api::stat_bool(result.stats, "single_flight")) ++shared_count;
  }
  EXPECT_EQ(shared_count, 7);
  service.wait_idle();  // handles resolve just before the counters settle
  const auto stats = service.stats();
  EXPECT_EQ(stats.dedup_shared, 7u);
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.finished, 8u);
  // Only the leader ran a solver; one store per key space (exact+rounded).
  EXPECT_EQ(service.cache_stats().insertions, 2u);
}

TEST(ServiceCacheTest, FollowerDeadlineFiresWhileParkedOnALeader) {
  // A follower's deadline is a latency bound even while it waits on a
  // leader: the watchdog must resolve it out of the leader's follower
  // list, long before the (budgetless) leader finishes.
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  const auto instance = std::make_shared<const model::Instance>(
      base_instance(60, 8, 3));  // exact B&B: far beyond any test budget
  api::SolveOptions options;
  options.cache_mode = CacheMode::ReadWrite;
  std::vector<SolveRequest> batch;
  batch.push_back(api::make_request(instance, options, {"exact"}));
  batch.push_back(api::make_request(instance, options, {"exact"}));
  batch.back().deadline = api::deadline_in(0.1);
  auto handles = service.submit_batch(std::move(batch));
  // The follower must resolve on its own deadline while the leader runs.
  ASSERT_TRUE(handles[1].wait_for(10.0));
  const auto follower = *handles[1].try_get();
  EXPECT_EQ(follower.status, SolveStatus::Cancelled);
  EXPECT_TRUE(api::stat_bool(follower.stats, "deadline_expired"));
  EXPECT_FALSE(handles[0].done());
  handles[0].cancel();
  handles[0].wait();
  EXPECT_EQ(service.stats().dedup_shared, 0u);
}

TEST(ServiceCacheTest, CancelledLeaderDoesNotPoisonFollowers) {
  // A leader cancelled through its handle must not hand its Cancelled
  // result to the followers — they re-enter the queue and lead their own
  // (here: also cancelled) solves.
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  const auto instance = std::make_shared<const model::Instance>(
      base_instance(60, 8, 3));
  api::SolveOptions options;
  options.cache_mode = CacheMode::ReadWrite;
  std::vector<SolveRequest> batch;
  batch.push_back(api::make_request(instance, options, {"exact"}));
  batch.push_back(api::make_request(instance, options, {"exact"}));
  auto handles = service.submit_batch(std::move(batch));
  handles[0].cancel();
  const auto& leader = handles[0].wait();
  EXPECT_EQ(leader.status, SolveStatus::Cancelled);
  // The follower is now running its own solve, not sharing the leader's
  // cancellation.
  handles[1].cancel();
  const auto& follower = handles[1].wait();
  EXPECT_EQ(follower.status, SolveStatus::Cancelled);
  EXPECT_FALSE(api::stat_bool(follower.stats, "single_flight"));
  service.wait_idle();
  EXPECT_EQ(service.stats().dedup_shared, 0u);
  EXPECT_EQ(service.stats().finished, 2u);
}

TEST(ServiceCacheTest, DeadlineClampedResultsAreNotCached) {
  // The deadline clamp shrinks the solver's time budget below what the
  // options key promises; whatever comes back (a truncated Feasible or a
  // Cancelled incumbent) must not serve budget-unconstrained twins.
  SchedulingService service({.num_threads = 1});
  const auto instance = base_instance(60, 8, 3);
  api::SolveOptions options;
  options.cache_mode = CacheMode::ReadWrite;
  options.time_limit_seconds = 0.5;
  auto clamped = api::make_request(instance, options, {"exact"});
  clamped.deadline = api::deadline_in(0.05);  // clamps 0.5 -> ~0.05
  service.submit(std::move(clamped)).wait();
  const auto fresh =
      service.submit(api::make_request(instance, options, {"exact"})).wait();
  EXPECT_FALSE(api::stat_bool(fresh.stats, "cache_hit"));
}

TEST(ServiceCacheTest, ReadWriteFollowerStoresThroughAReadLeader) {
  // Single-flight merges requests with different cache modes; the result
  // is stored when ANY of them asked for writes, not just the leader.
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  const auto instance = std::make_shared<const model::Instance>(
      base_instance(60, 6, 13));
  api::SolveOptions read_options;
  read_options.cache_mode = CacheMode::Read;
  api::SolveOptions write_options;
  write_options.cache_mode = CacheMode::ReadWrite;
  std::vector<SolveRequest> batch;
  batch.push_back(api::make_request(instance, read_options,
                                    {"greedy-bags"}));  // leader: Read
  batch.push_back(api::make_request(instance, write_options,
                                    {"greedy-bags"}));  // follower: RW
  for (auto& handle : service.submit_batch(std::move(batch))) {
    EXPECT_TRUE(handle.wait().ok());
  }
  service.wait_idle();
  EXPECT_GE(service.cache_stats().insertions, 1u);
  const auto replay =
      service.submit(api::make_request(instance, read_options,
                                       {"greedy-bags"}))
          .wait();
  EXPECT_TRUE(api::stat_bool(replay.stats, "cache_hit"));
}

TEST(ServiceCacheTest, ConcurrentMixedTrafficResolvesEverything) {
  // Hammer the service from several submitter threads with a mix of hot
  // duplicates and unique instances; every handle must resolve with a
  // feasible result and the counters must balance. (Run under ASan/TSan
  // flags by the sanitize CI job.)
  SchedulingService service({.num_threads = 4, .max_concurrent = 4});
  const auto hot =
      std::make_shared<const model::Instance>(base_instance(60, 6, 1));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::vector<std::thread> submitters;
  std::mutex mutex;
  std::vector<api::SolveHandle> handles;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        api::SolveOptions options;
        options.cache_mode = CacheMode::ReadWrite;
        SolveRequest request =
            (i % 2 == 0)
                ? api::make_request(hot, options, {"greedy-bags"})
                : api::make_request(
                      base_instance(40, 5,
                                    static_cast<std::uint64_t>(
                                        100 + t * kPerThread + i)),
                      options, {"greedy-bags"});
        auto handle = service.submit(std::move(request));
        std::lock_guard<std::mutex> lock(mutex);
        handles.push_back(std::move(handle));
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  for (auto& handle : handles) {
    EXPECT_TRUE(handle.wait().ok());
  }
  service.wait_idle();  // handles resolve just before the counters settle
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(handles.size()));
  EXPECT_EQ(stats.finished, stats.submitted);
  // The hot instance repeats 24x: all but the leaders came back via the
  // cache or a single-flight share.
  EXPECT_GE(stats.cache_hits + stats.dedup_shared, 1u);
}

}  // namespace
}  // namespace bagsched
