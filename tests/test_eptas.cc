// End-to-end tests for the EPTAS: feasibility always, approximation ratio
// against planted/exact optima, and behaviour across instance families.
#include <gtest/gtest.h>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/exact.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using model::Instance;

TEST(EptasTest, EmptyInstance) {
  const Instance instance(std::vector<model::Job>{}, 3, 0);
  const auto result = eptas::eptas_schedule(instance, 0.5);
  EXPECT_EQ(result.makespan, 0.0);
}

TEST(EptasTest, SingleJob) {
  const Instance instance = Instance::from_vectors({2.5}, {0}, 2);
  const auto result = eptas::eptas_schedule(instance, 0.5);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  EXPECT_DOUBLE_EQ(result.makespan, 2.5);
}

TEST(EptasTest, ThrowsOnInfeasibleInstance) {
  const Instance instance = Instance::from_vectors({1, 1, 1}, {0, 0, 0}, 2);
  EXPECT_THROW(eptas::eptas_schedule(instance, 0.5),
               std::invalid_argument);
}

TEST(EptasTest, ThrowsOnBadEps) {
  const Instance instance = Instance::from_vectors({1.0}, {0}, 1);
  EXPECT_THROW(eptas::eptas_schedule(instance, 0.0),
               std::invalid_argument);
  EXPECT_THROW(eptas::eptas_schedule(instance, 1.5),
               std::invalid_argument);
}

TEST(EptasTest, FeasibleOnAllFamilies) {
  for (const auto& family : gen::family_names()) {
    const Instance instance = gen::by_name(family, 30, 5, 11);
    const auto result = eptas::eptas_schedule(instance, 0.5);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok())
        << family;
    EXPECT_GE(result.makespan,
              model::combined_lower_bound(instance) - 1e-9)
        << family;
  }
}

TEST(EptasTest, RatioOnPlantedInstances) {
  // The headline guarantee: makespan <= (1 + c*eps) * OPT. The paper's c
  // is a fixed constant; we assert c <= 2 empirically at eps = 1/2.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto planted = gen::planted({.num_machines = 6,
                                       .num_bags = 14,
                                       .min_jobs_per_machine = 2,
                                       .max_jobs_per_machine = 5,
                                       .target = 1.0,
                                       .seed = seed});
    const auto result = eptas::eptas_schedule(planted.instance, 0.5);
    EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
    EXPECT_LE(result.makespan, (1.0 + 2.0 * 0.5) * planted.opt + 1e-9)
        << "seed " << seed;
  }
}

TEST(EptasTest, SolvesFigure1Family) {
  // The EPTAS must not fall into the Figure-1 trap: makespan well below
  // the 5/3 * OPT of the stacking heuristic.
  const auto planted = gen::figure1({.num_machines = 6, .scale = 1.0,
                                     .seed = 4});
  const auto result = eptas::eptas_schedule(planted.instance, 0.4);
  EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
  EXPECT_LE(result.makespan, (1.0 + 0.4) * planted.opt + 1e-9);
}

TEST(EptasTest, SmallerEpsNoWorse) {
  const Instance instance = gen::by_name("twopoint", 30, 5, 8);
  const auto coarse = eptas::eptas_schedule(instance, 0.75);
  const auto fine = eptas::eptas_schedule(instance, 0.33);
  EXPECT_TRUE(model::validate(instance, coarse.schedule).ok());
  EXPECT_TRUE(model::validate(instance, fine.schedule).ok());
  // Not a theorem per-instance, but with the shared greedy fallback the
  // finer run can never be worse than the coarse one's guarantee band.
  EXPECT_LE(fine.makespan, (1.0 + 2 * 0.75) *
                               model::combined_lower_bound(instance) +
                               1e-9);
}

TEST(EptasTest, RatioAgainstExactOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = gen::by_name("replica", 15, 4, seed);
    const auto exact = sched::solve_exact(instance);
    ASSERT_TRUE(exact.proven_optimal);
    const auto result = eptas::eptas_schedule(instance, 0.5);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
    EXPECT_LE(result.makespan, (1.0 + 2.0 * 0.5) * exact.makespan + 1e-9)
        << "seed " << seed;
  }
}

TEST(EptasTest, StatsArePopulated) {
  const auto planted = gen::planted({.num_machines = 5,
                                     .num_bags = 10,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 4,
                                     .target = 1.0,
                                     .seed = 2});
  const auto result = eptas::eptas_schedule(planted.instance, 0.5);
  EXPECT_GT(result.stats.guesses_tried, 0);
  EXPECT_GT(result.stats.lower_bound, 0.0);
  EXPECT_GE(result.stats.greedy_upper, result.stats.lower_bound - 1e-12);
  if (!result.stats.used_fallback) {
    EXPECT_GT(result.stats.columns, 0);
    EXPECT_GT(result.stats.final_guess, 0.0);
  }
}

TEST(EptasTest, GuessProbeMonotoneAtHighT) {
  // A guess at the greedy upper bound must succeed (dual approximation
  // premise) on a well-behaved family.
  const auto planted = gen::planted({.num_machines = 5,
                                     .num_bags = 12,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 4,
                                     .target = 1.0,
                                     .seed = 9});
  EptasConfig config;
  const auto schedule = eptas::try_makespan_guess(
      planted.instance, 0.5, 1.05 * planted.opt, config);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(model::validate(planted.instance, *schedule).ok());
}

TEST(EptasTest, GuessBelowOptFails) {
  // A guess far below OPT must be rejected (area check at least).
  const auto planted = gen::planted({.num_machines = 5,
                                     .num_bags = 12,
                                     .min_jobs_per_machine = 3,
                                     .max_jobs_per_machine = 5,
                                     .target = 1.0,
                                     .seed = 10});
  EptasConfig config;
  const auto schedule = eptas::try_makespan_guess(
      planted.instance, 0.5, 0.5 * planted.opt, config);
  EXPECT_FALSE(schedule.has_value());
}

TEST(EptasTest, DeterministicForSameInput) {
  const Instance instance = gen::by_name("uniform", 25, 4, 21);
  const auto a = eptas::eptas_schedule(instance, 0.5);
  const auto b = eptas::eptas_schedule(instance, 0.5);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.schedule.assignment(), b.schedule.assignment());
}

}  // namespace
}  // namespace bagsched
