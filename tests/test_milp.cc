// Tests for the branch-and-bound MILP solver.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.h"
#include "util/prng.h"

namespace bagsched {
namespace {

using lp::Model;
using lp::Objective;
using lp::Sense;
using milp::MilpStatus;

TEST(MilpTest, KnapsackSmall) {
  // max 8a + 11b + 6c + 4d  s.t. 5a + 7b + 4c + 3d <= 14, binary.
  // Optimum: a + c + d = 18? check combos: b+c+d = 21 weight 14 -> 21.
  Model model;
  model.set_objective(Objective::Maximize);
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<int> vars;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(model.add_variable(values[i], 0.0, 1.0));
    row.emplace_back(vars.back(), weights[i]);
  }
  model.add_constraint(row, Sense::LessEqual, 14.0);
  const auto result = milp::solve(model, vars);
  ASSERT_EQ(result.status, MilpStatus::Optimal);
  EXPECT_NEAR(result.objective, 21.0, 1e-6);
  EXPECT_NEAR(result.x[1], 1.0, 1e-6);
  EXPECT_NEAR(result.x[2], 1.0, 1e-6);
  EXPECT_NEAR(result.x[3], 1.0, 1e-6);
}

TEST(MilpTest, IntegralityMatters) {
  // max x s.t. 2x <= 3: LP gives 1.5, MILP must give 1.
  Model model;
  model.set_objective(Objective::Maximize);
  const int x = model.add_variable(1.0);
  model.add_constraint({{x, 2.0}}, Sense::LessEqual, 3.0);
  const auto result = milp::solve(model, {x});
  ASSERT_EQ(result.status, MilpStatus::Optimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-6);
}

TEST(MilpTest, MixedIntegerKeepsContinuousFractional) {
  // min x + y s.t. x + y >= 2.5, x integer, y continuous.
  // Optimum: x = 0, y = 2.5 (or any split) -> objective 2.5.
  Model model;
  const int x = model.add_variable(1.0);
  const int y = model.add_variable(1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 2.5);
  const auto result = milp::solve(model, {x});
  ASSERT_EQ(result.status, MilpStatus::Optimal);
  EXPECT_NEAR(result.objective, 2.5, 1e-6);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(x)],
              std::round(result.x[static_cast<std::size_t>(x)]), 1e-6);
}

TEST(MilpTest, DetectsInfeasible) {
  Model model;
  const int x = model.add_variable(1.0, 0.0, 1.0);
  model.add_constraint({{x, 1.0}}, Sense::GreaterEqual, 2.0);
  const auto result = milp::solve(model, {x});
  EXPECT_EQ(result.status, MilpStatus::Infeasible);
}

TEST(MilpTest, IntegerInfeasibleThoughLpFeasible) {
  // 0.5 <= x <= 0.7 has LP solutions but no integer ones.
  Model model;
  const int x = model.add_variable(1.0, 0.0, 0.7);
  model.add_constraint({{x, 1.0}}, Sense::GreaterEqual, 0.5);
  const auto result = milp::solve(model, {x});
  EXPECT_EQ(result.status, MilpStatus::Infeasible);
}

TEST(MilpTest, EqualityWithIntegers) {
  // 3x + 5y = 14, minimize x + y, x,y >= 0 integers: no solution with
  // x=3,y=1 (9+5=14) -> objective 4.
  Model model;
  const int x = model.add_variable(1.0);
  const int y = model.add_variable(1.0);
  model.add_constraint({{x, 3.0}, {y, 5.0}}, Sense::Equal, 14.0);
  const auto result = milp::solve(model, {x, y});
  ASSERT_EQ(result.status, MilpStatus::Optimal);
  EXPECT_NEAR(result.objective, 4.0, 1e-6);
}

TEST(MilpTest, BinPackingAsMilp) {
  // 6 items of sizes {4,4,3,3,2,2} into bins of capacity 9: 2 bins suffice
  // (4+3+2, 4+3+2). Configuration MILP over explicit assignment vars.
  const double sizes[] = {4, 4, 3, 3, 2, 2};
  const int items = 6, bins = 3;
  Model model;
  std::vector<int> use(bins);       // bin opened
  std::vector<std::vector<int>> assign(items, std::vector<int>(bins));
  for (int b = 0; b < bins; ++b) use[b] = model.add_variable(1.0, 0.0, 1.0);
  for (int i = 0; i < items; ++i) {
    for (int b = 0; b < bins; ++b) {
      assign[i][b] = model.add_variable(0.0, 0.0, 1.0);
    }
  }
  for (int i = 0; i < items; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int b = 0; b < bins; ++b) row.emplace_back(assign[i][b], 1.0);
    model.add_constraint(row, Sense::Equal, 1.0);
  }
  for (int b = 0; b < bins; ++b) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < items; ++i) row.emplace_back(assign[i][b], sizes[i]);
    row.emplace_back(use[b], -9.0);
    model.add_constraint(row, Sense::LessEqual, 0.0);
  }
  std::vector<int> integers = use;
  for (int i = 0; i < items; ++i) {
    for (int b = 0; b < bins; ++b) integers.push_back(assign[i][b]);
  }
  milp::MilpOptions options;
  options.max_nodes = 100000;
  const auto result = milp::solve(model, integers, options);
  ASSERT_TRUE(result.status == MilpStatus::Optimal ||
              result.status == MilpStatus::Feasible);
  EXPECT_NEAR(result.objective, 2.0, 1e-6);
}

TEST(MilpTest, RespectsNodeLimit) {
  Model model;
  model.set_objective(Objective::Maximize);
  const int x = model.add_variable(1.0, 0.0, 10.0);
  model.add_constraint({{x, 2.0}}, Sense::LessEqual, 7.0);
  milp::MilpOptions options;
  options.max_nodes = 1;
  const auto result = milp::solve(model, {x}, options);
  // With one node the root LP (x=3.5) branches and stops; either nothing
  // integral was found (LimitReached) or bounding got lucky.
  EXPECT_TRUE(result.status == MilpStatus::LimitReached ||
              result.status == MilpStatus::Feasible ||
              result.status == MilpStatus::Optimal);
}

class RandomIlpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomIlpTest, MatchesBruteForceOnSmallInstances) {
  // Random small ILPs: max c.x, A x <= b, x in {0,1,2}^4. Brute force is
  // 3^4 = 81 points.
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  Model model;
  model.set_objective(Objective::Maximize);
  const int n = 4;
  std::vector<double> costs(n);
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    costs[static_cast<std::size_t>(i)] = rng.uniform_real(0.5, 3.0);
    vars.push_back(
        model.add_variable(costs[static_cast<std::size_t>(i)], 0.0, 2.0));
  }
  std::vector<std::vector<double>> rows(3, std::vector<double>(n));
  std::vector<double> rhs(3);
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < n; ++i) {
      rows[r][static_cast<std::size_t>(i)] = rng.uniform_real(0.0, 2.0);
    }
    rhs[static_cast<std::size_t>(r)] = rng.uniform_real(2.0, 6.0);
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i) {
      terms.emplace_back(vars[static_cast<std::size_t>(i)],
                         rows[r][static_cast<std::size_t>(i)]);
    }
    model.add_constraint(std::move(terms), Sense::LessEqual,
                         rhs[static_cast<std::size_t>(r)]);
  }
  const auto result = milp::solve(model, vars);
  ASSERT_EQ(result.status, MilpStatus::Optimal);

  double brute_best = -1.0;
  for (int a = 0; a <= 2; ++a)
    for (int b = 0; b <= 2; ++b)
      for (int c = 0; c <= 2; ++c)
        for (int d = 0; d <= 2; ++d) {
          const double point[] = {double(a), double(b), double(c),
                                  double(d)};
          bool ok = true;
          for (int r = 0; r < 3 && ok; ++r) {
            double lhs = 0;
            for (int i = 0; i < n; ++i) lhs += rows[r][i] * point[i];
            ok = lhs <= rhs[static_cast<std::size_t>(r)] + 1e-9;
          }
          if (!ok) continue;
          double value = 0;
          for (int i = 0; i < n; ++i) value += costs[i] * point[i];
          brute_best = std::max(brute_best, value);
        }
  EXPECT_NEAR(result.objective, brute_best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpTest, ::testing::Range(1, 11));

TEST(MilpTest, BestBoundReportedOnTruncatedSearch) {
  // max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d <= 14, binary.
  // LP relaxation = 22; integral optimum = 21.
  Model model;
  model.set_objective(Objective::Maximize);
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<int> vars;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(model.add_variable(values[i], 0.0, 1.0));
    row.emplace_back(vars.back(), weights[i]);
  }
  model.add_constraint(row, Sense::LessEqual, 14.0);

  // One node: the root LP is solved and fractional, then the budget is
  // gone. No incumbent exists, but the root relaxation is a proven bound
  // and LimitReached must carry it (portfolio gap decisions rely on it).
  milp::MilpOptions options;
  options.max_nodes = 1;
  const auto truncated = milp::solve(model, vars, options);
  EXPECT_EQ(truncated.status, MilpStatus::LimitReached);
  EXPECT_NEAR(truncated.best_bound, 22.0, 1e-6);

  // A slightly larger budget finds an incumbent; best_bound must bracket
  // the true optimum from the relaxation side (>= 21 for maximization)
  // while the incumbent bounds it from below.
  milp::MilpOptions partial;
  partial.max_nodes = 4;
  const auto feasible = milp::solve(model, vars, partial);
  if (feasible.status == MilpStatus::Feasible ||
      feasible.status == MilpStatus::Optimal) {
    EXPECT_LE(feasible.objective, 21.0 + 1e-9);
    EXPECT_GE(feasible.best_bound, 21.0 - 1e-6);
    EXPECT_GE(feasible.best_bound, feasible.objective - 1e-9);
  } else {
    EXPECT_EQ(feasible.status, MilpStatus::LimitReached);
    EXPECT_GE(feasible.best_bound, 21.0 - 1e-6);
  }

  // Untruncated run: proven optimal, bound meets the objective.
  const auto full = milp::solve(model, vars);
  ASSERT_EQ(full.status, MilpStatus::Optimal);
  EXPECT_NEAR(full.objective, 21.0, 1e-6);
  EXPECT_NEAR(full.best_bound, 21.0, 1e-6);
  EXPECT_GT(full.lp_iterations, 0);
}

}  // namespace
}  // namespace bagsched
