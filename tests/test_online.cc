// Tests for the online scheduling subsystem (DESIGN.md §7): the churn-trace
// generator (fixed-seed determinism, per-step feasibility), delta
// apply/undo round trips through exact canonical fingerprints, migration
// cost against a brute-force recount, ScheduleSession's repair pipeline
// (regret bound, noop/memo paths, infeasible rejection), the service's
// session routing (FIFO per session, unknown-session errors, close
// semantics), and the delta JSON round trips.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/serialize.h"
#include "api/service.h"
#include "api/telemetry.h"
#include "cache/canonicalize.h"
#include "gen/churn.h"
#include "model/delta.h"
#include "model/schedule.h"
#include "online/session.h"
#include "util/prng.h"

namespace bagsched {
namespace {

gen::ChurnParams small_churn(std::uint64_t seed = 11) {
  gen::ChurnParams params;
  params.num_jobs = 40;
  params.num_machines = 6;
  params.num_bags = 10;
  params.steps = 25;
  params.seed = seed;
  return params;
}

online::SessionOptions quick_session(const char* solver = "greedy-bags") {
  online::SessionOptions options;
  options.solvers = {solver};
  options.solve.seed = 5;
  return options;
}

// --- Churn trace -----------------------------------------------------------

TEST(ChurnTraceTest, FixedSeedIsDeterministic) {
  const auto a = gen::churn_trace(small_churn());
  const auto b = gen::churn_trace(small_churn());
  ASSERT_EQ(a.deltas.size(), b.deltas.size());
  EXPECT_EQ(cache::Canonicalizer::exact(a.initial).fingerprint,
            cache::Canonicalizer::exact(b.initial).fingerprint);
  model::Instance current_a = a.initial;
  model::Instance current_b = b.initial;
  for (std::size_t step = 0; step < a.deltas.size(); ++step) {
    ASSERT_EQ(a.deltas[step].arrivals.size(), b.deltas[step].arrivals.size());
    ASSERT_EQ(a.deltas[step].departures, b.deltas[step].departures);
    current_a = model::apply_delta(current_a, a.deltas[step]);
    current_b = model::apply_delta(current_b, b.deltas[step]);
    EXPECT_EQ(cache::Canonicalizer::exact(current_a).fingerprint,
              cache::Canonicalizer::exact(current_b).fingerprint);
  }
  // A different seed produces a different trace.
  const auto c = gen::churn_trace(small_churn(12));
  EXPECT_NE(cache::Canonicalizer::exact(a.initial).fingerprint,
            cache::Canonicalizer::exact(c.initial).fingerprint);
}

TEST(ChurnTraceTest, EveryIntermediateInstanceStaysFeasible) {
  const auto trace = gen::churn_trace(small_churn(3));
  model::Instance current = trace.initial;
  ASSERT_TRUE(current.is_feasible());
  for (const auto& delta : trace.deltas) {
    current = model::apply_delta(current, delta);
    current.validate();
    EXPECT_TRUE(current.is_feasible());
    EXPECT_GE(current.num_jobs(), 1);
    EXPECT_GE(current.num_machines(), 1);
  }
}

// --- Delta apply/undo ------------------------------------------------------

TEST(DeltaTest, ApplyUndoRoundTripSharesExactFingerprint) {
  const auto trace = gen::churn_trace(small_churn(7));
  model::Instance current = trace.initial;
  for (const auto& delta : trace.deltas) {
    model::DeltaMap map;
    const model::Instance next = model::apply_delta(current, delta, &map);
    const model::Delta undo = model::inverse_delta(current, delta, map);
    const model::Instance back = model::apply_delta(next, undo);
    EXPECT_EQ(cache::Canonicalizer::exact(back).fingerprint,
              cache::Canonicalizer::exact(current).fingerprint);
    EXPECT_EQ(back.num_jobs(), current.num_jobs());
    EXPECT_EQ(back.num_machines(), current.num_machines());
    current = next;
  }
}

TEST(DeltaTest, InverseRoundTripAcrossAFailedThenReAddedMachine) {
  // Bags of size 2 on 4 machines: still bag-feasible after one failure.
  const model::Instance start = model::Instance::from_vectors(
      {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0},
      {0, 0, 1, 1, 2, 2, 3, 3}, 4);
  ASSERT_GE(start.num_machines(), 2);

  // Fail a machine, then bring a replacement back: machines are identical,
  // so the round trip restores the exact canonical fingerprint.
  model::Delta fail;
  fail.failed_machines = {1};
  model::DeltaMap fail_map;
  const model::Instance degraded = model::apply_delta(start, fail, &fail_map);
  ASSERT_TRUE(degraded.is_feasible());
  EXPECT_EQ(degraded.num_machines(), start.num_machines() - 1);

  model::Delta readd;
  readd.machines_added = 1;
  model::DeltaMap readd_map;
  const model::Instance restored =
      model::apply_delta(degraded, readd, &readd_map);
  EXPECT_EQ(restored.num_machines(), start.num_machines());
  EXPECT_EQ(cache::Canonicalizer::exact(restored).fingerprint,
            cache::Canonicalizer::exact(start).fingerprint);

  // Each step's inverse unwinds it: restored -> degraded -> start.
  const model::Delta undo_readd =
      model::inverse_delta(degraded, readd, readd_map);
  const model::Instance back_degraded =
      model::apply_delta(restored, undo_readd);
  EXPECT_EQ(cache::Canonicalizer::exact(back_degraded).fingerprint,
            cache::Canonicalizer::exact(degraded).fingerprint);
  const model::Delta undo_fail = model::inverse_delta(start, fail, fail_map);
  const model::Instance back_start =
      model::apply_delta(back_degraded, undo_fail);
  EXPECT_EQ(cache::Canonicalizer::exact(back_start).fingerprint,
            cache::Canonicalizer::exact(start).fingerprint);

  // A live session repairs across the same outage: every job on the failed
  // machine migrates, revisions advance, and the schedule stays feasible.
  online::ScheduleSession session(start, quick_session());
  const api::SolveResult after_fail = session.apply(fail);
  ASSERT_TRUE(after_fail.ok()) << after_fail.error;
  EXPECT_TRUE(after_fail.schedule_feasible);
  const api::SolveResult after_readd = session.apply(readd);
  ASSERT_TRUE(after_readd.ok()) << after_readd.error;
  EXPECT_TRUE(after_readd.schedule_feasible);
  EXPECT_EQ(session.revision(), 2u);
  EXPECT_EQ(session.instance().num_machines(), start.num_machines());
}

TEST(DeltaTest, MalformedDeltasThrow) {
  const auto instance =
      model::Instance::from_vectors({1.0, 2.0, 3.0}, {0, 0, 1}, 2);
  model::Delta unknown_job;
  unknown_job.departures = {7};
  EXPECT_THROW(model::apply_delta(instance, unknown_job),
               std::invalid_argument);
  model::Delta duplicate;
  duplicate.departures = {1, 1};
  EXPECT_THROW(model::apply_delta(instance, duplicate),
               std::invalid_argument);
  model::Delta bad_size;
  bad_size.resizes = {model::JobResize{0, -1.0}};
  EXPECT_THROW(model::apply_delta(instance, bad_size),
               std::invalid_argument);
  model::Delta no_machines;
  no_machines.failed_machines = {0, 1};
  EXPECT_THROW(model::apply_delta(instance, no_machines),
               std::invalid_argument);
}

// --- Migration cost --------------------------------------------------------

/// Brute force: enumerate surviving (old, new) job pairs and compare their
/// machines through the delta's machine renaming, counting mismatches and
/// jobs stranded on failed machines.
int brute_force_migration(const model::Schedule& prev,
                          const model::Schedule& next,
                          const model::DeltaMap& map) {
  int moved = 0;
  for (model::JobId old_job = 0; old_job < prev.num_jobs(); ++old_job) {
    const model::JobId new_job =
        map.new_job_of[static_cast<std::size_t>(old_job)];
    if (new_job == model::kRemovedJob) continue;
    const model::MachineId old_machine = prev.machine_of(old_job);
    bool same = false;
    if (old_machine != model::kUnassigned) {
      const model::MachineId renamed =
          map.new_machine_of[static_cast<std::size_t>(old_machine)];
      same = renamed != model::kUnassigned &&
             next.machine_of(new_job) == renamed;
    }
    if (!same) ++moved;
  }
  return moved;
}

TEST(MigrationCostTest, MatchesBruteForceOnRandomSchedules) {
  util::Xoshiro256 rng(99);
  const auto trace = gen::churn_trace(small_churn(21));
  model::Instance current = trace.initial;
  for (const auto& delta : trace.deltas) {
    model::DeltaMap map;
    const model::Instance next_instance =
        model::apply_delta(current, delta, &map);
    // Random (not necessarily feasible) assignments on both sides: the
    // migration count is a pure schedule diff, independent of feasibility.
    model::Schedule prev(current.num_jobs(), current.num_machines());
    for (model::JobId job = 0; job < current.num_jobs(); ++job) {
      prev.assign(job, static_cast<model::MachineId>(rng.index(
                           static_cast<std::size_t>(current.num_machines()))));
    }
    model::Schedule next(next_instance.num_jobs(),
                         next_instance.num_machines());
    for (model::JobId job = 0; job < next_instance.num_jobs(); ++job) {
      next.assign(job,
                  static_cast<model::MachineId>(rng.index(
                      static_cast<std::size_t>(next_instance.num_machines()))));
    }
    EXPECT_EQ(online::migration_cost(prev, next, map),
              brute_force_migration(prev, next, map));
    current = next_instance;
  }
}

TEST(MigrationCostTest, PureRenumberingIsNotMigration) {
  // One machine fails; every job on the other machines keeps its (renamed)
  // machine. Only the failed machine's job counts as moved.
  const auto instance = model::Instance::from_vectors(
      {1.0, 1.0, 1.0}, {0, 1, 2}, 3);
  model::Schedule prev(3, 3);
  prev.assign(0, 0);
  prev.assign(1, 1);
  prev.assign(2, 2);
  model::Delta delta;
  delta.failed_machines = {0};
  model::DeltaMap map;
  model::apply_delta(instance, delta, &map);
  // No departures, so job ids survive unchanged; machines 1 and 2 are
  // renamed to 0 and 1. Keeping the renamed machine is not migration.
  model::Schedule next(3, 2);
  next.assign(0, 0);  // machine 0 failed: moved wherever it lands
  next.assign(1, 0);  // renamed 1 -> 0: stayed
  next.assign(2, 1);  // renamed 2 -> 1: stayed
  EXPECT_EQ(online::migration_cost(prev, next, map), 1);
}

// --- ScheduleSession -------------------------------------------------------

TEST(ScheduleSessionTest, RepairsChurnWithinTheRegretBound) {
  const auto trace = gen::churn_trace(small_churn(31));
  online::ScheduleSession session(trace.initial, quick_session());
  EXPECT_EQ(session.revision(), 0u);
  EXPECT_TRUE(session.last_result().ok());

  std::uint64_t committed = 0;
  for (const auto& delta : trace.deltas) {
    const api::SolveResult result = session.apply(delta);
    ASSERT_TRUE(result.ok()) << result.error;
    ++committed;
    EXPECT_EQ(session.revision(), committed);
    // The acceptance contract: every committed schedule is within the
    // regret bound of the combined lower bound (hence of any solver).
    EXPECT_LE(session.makespan(),
              (1.0 + session.options().regret_bound) *
                  session.lower_bound() * (1.0 + 1e-9));
    EXPECT_TRUE(model::validate(session.instance(), session.schedule()).ok());
    // Migration fields are filled on every delta result.
    EXPECT_GE(result.moved_jobs, 0);
    EXPECT_GE(result.migration_ratio, 0.0);
    EXPECT_LE(result.migration_ratio, 1.0);
  }
  const auto& stats = session.stats();
  EXPECT_EQ(stats.deltas, trace.deltas.size());
  EXPECT_EQ(stats.noops + stats.memo_hits + stats.repairs +
                stats.region_resolves + stats.fresh_solves,
            trace.deltas.size());
  // Repair must be the common path on gentle churn — that is the point.
  EXPECT_GT(stats.repairs + stats.memo_hits + stats.noops,
            stats.fresh_solves);
}

TEST(ScheduleSessionTest, NoopDeltaDoesNotAdvanceTheRevision) {
  const auto trace = gen::churn_trace(small_churn(41));
  online::ScheduleSession session(trace.initial, quick_session());
  const double makespan = session.makespan();
  const api::SolveResult result = session.apply(model::Delta{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(api::stat_str(result.stats, "online.path"), "noop");
  EXPECT_EQ(result.moved_jobs, 0);
  EXPECT_EQ(session.revision(), 0u);
  EXPECT_DOUBLE_EQ(session.makespan(), makespan);
  EXPECT_EQ(session.stats().noops, 1u);
}

TEST(ScheduleSessionTest, UndoneChurnHitsTheMemo) {
  const auto trace = gen::churn_trace(small_churn(51));
  online::ScheduleSession session(trace.initial, quick_session());

  model::Delta delta;
  delta.departures = {0, 3};
  model::DeltaMap map;
  model::apply_delta(trace.initial, delta, &map);
  const model::Delta undo =
      model::inverse_delta(trace.initial, delta, map);

  ASSERT_TRUE(session.apply(delta).ok());
  const api::SolveResult back = session.apply(undo);
  ASSERT_TRUE(back.ok());
  // Undoing the churn reproduces the initial instance's exact fingerprint,
  // which the session memoized at open: no solving, no regret.
  EXPECT_EQ(api::stat_str(back.stats, "online.path"), "memo");
  EXPECT_EQ(session.stats().memo_hits, 1u);
  EXPECT_EQ(session.revision(), 2u);
}

TEST(ScheduleSessionTest, InfeasibleDeltaIsRejectedAndStateKept) {
  // Bag 0 holds 2 jobs on 2 machines; failing one machine leaves the bag
  // over-subscribed (2 > 1) — an Infeasible answer, not a commit.
  const auto instance = model::Instance::from_vectors(
      {1.0, 2.0, 3.0}, {0, 0, 1}, 2);
  online::ScheduleSession session(instance, quick_session());
  const double makespan = session.makespan();
  model::Delta fail;
  fail.failed_machines = {1};
  const api::SolveResult result = session.apply(fail);
  EXPECT_EQ(result.status, api::SolveStatus::Infeasible);
  EXPECT_EQ(session.revision(), 0u);
  EXPECT_DOUBLE_EQ(session.makespan(), makespan);
  EXPECT_EQ(session.instance().num_machines(), 2);
  EXPECT_EQ(session.stats().rejected, 1u);
  // The session keeps working after the rejection.
  model::Delta grow;
  grow.machines_added = 1;
  EXPECT_TRUE(session.apply(grow).ok());
}

TEST(ScheduleSessionTest, MachineFailureMigratesTheStrandedJobs) {
  // 12 jobs in bags of 3 on 4 machines: still feasible after one failure
  // (bag size 3 <= 3 machines), unlike a random churn instance whose
  // largest bag may already fill every machine.
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  util::Xoshiro256 rng(5);
  for (int job = 0; job < 12; ++job) {
    sizes.push_back(rng.uniform_real(0.5, 1.5));
    bags.push_back(job % 4);
  }
  const auto instance = model::Instance::from_vectors(sizes, bags, 4);
  online::ScheduleSession session(instance, quick_session());
  int stranded = 0;
  for (model::JobId job = 0; job < instance.num_jobs(); ++job) {
    if (session.schedule().machine_of(job) == 0) ++stranded;
  }
  model::Delta fail;
  fail.failed_machines = {0};
  const api::SolveResult result = session.apply(fail);
  ASSERT_TRUE(result.ok()) << result.error;
  // Every job of the failed machine had to move.
  EXPECT_GE(result.moved_jobs, stranded);
  EXPECT_EQ(session.instance().num_machines(), 3);
}

// --- Service sessions ------------------------------------------------------

TEST(ServiceSessionTest, OpenDeltaCloseLifecycle) {
  api::SchedulingService service({.num_threads = 2});
  const auto trace = gen::churn_trace(small_churn(71));
  api::SolveOptions options;
  options.seed = 5;
  auto opening = service.open_session(
      api::make_request(trace.initial, options, {"greedy-bags"}));
  ASSERT_GE(opening.session, 1u);
  const api::SolveResult& initial = opening.initial.wait();
  ASSERT_TRUE(initial.ok()) << initial.error;

  auto handle = service.submit(
      api::make_delta_request(opening.session, trace.deltas.front()));
  const api::SolveResult& repaired = handle.wait();
  ASSERT_TRUE(repaired.ok()) << repaired.error;
  EXPECT_GE(repaired.moved_jobs, 0);
  EXPECT_EQ(api::stat_int(repaired.stats, "online.revision"), 1);

  EXPECT_TRUE(service.close_session(opening.session));
  EXPECT_FALSE(service.close_session(opening.session));
  // Deltas after close resolve as errors, they do not hang.
  auto late = service.submit(
      api::make_delta_request(opening.session, trace.deltas.front()));
  EXPECT_EQ(late.wait().status, api::SolveStatus::Error);

  const auto stats = service.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_GE(stats.session_deltas, 1u);
}

TEST(ServiceSessionTest, UnknownSessionResolvesWithError) {
  api::SchedulingService service({.num_threads = 1});
  auto handle = service.submit(api::make_delta_request(404, model::Delta{}));
  const api::SolveResult& result = handle.wait();
  EXPECT_EQ(result.status, api::SolveStatus::Error);
  EXPECT_NE(result.error.find("unknown session"), std::string::npos);
}

TEST(ServiceSessionTest, DeltasSerializeFifoPerSession) {
  api::SchedulingService service({.num_threads = 4});
  const auto trace = gen::churn_trace(small_churn(81));
  api::SolveOptions options;
  options.seed = 5;
  auto opening = service.open_session(
      api::make_request(trace.initial, options, {"greedy-bags"}));
  // Enqueue every delta at once; per-session FIFO must apply them in
  // submit order, so the revisions come back strictly increasing.
  std::vector<api::SolveHandle> handles;
  for (const auto& delta : trace.deltas) {
    handles.push_back(
        service.submit(api::make_delta_request(opening.session, delta)));
  }
  long long revision = 0;
  for (auto& handle : handles) {
    const api::SolveResult& result = handle.wait();
    ASSERT_TRUE(result.ok()) << result.error;
    const long long at = api::stat_int(result.stats, "online.revision");
    EXPECT_EQ(at, revision + 1);
    revision = at;
  }
  service.close_session(opening.session);
  service.wait_idle();
}

// --- Serialization ---------------------------------------------------------

TEST(OnlineSerializeTest, DeltaJsonRoundTrip) {
  model::Delta delta;
  delta.arrivals = {model::JobArrival{0.75, 3}, model::JobArrival{1.5, 9}};
  delta.departures = {2, 5};
  delta.resizes = {model::JobResize{1, 2.25}};
  delta.machines_added = 2;
  delta.failed_machines = {0};
  const model::Delta back = api::delta_from_json(api::to_json(delta));
  ASSERT_EQ(back.arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(back.arrivals[0].size, 0.75);
  EXPECT_EQ(back.arrivals[1].bag, 9);
  EXPECT_EQ(back.departures, delta.departures);
  ASSERT_EQ(back.resizes.size(), 1u);
  EXPECT_EQ(back.resizes[0].job, 1);
  EXPECT_DOUBLE_EQ(back.resizes[0].size, 2.25);
  EXPECT_EQ(back.machines_added, 2);
  EXPECT_EQ(back.failed_machines, delta.failed_machines);
  // An empty object parses as a noop delta.
  EXPECT_TRUE(model::is_noop(api::delta_from_json(util::Json::object())));
}

TEST(OnlineSerializeTest, DeltaRequestJsonRoundTrip) {
  model::Delta delta;
  delta.departures = {1};
  api::DeltaRequest request = api::make_delta_request(17, delta);
  request.priority = 3;
  const api::DeltaRequest back =
      api::delta_request_from_json(api::to_json(request));
  EXPECT_EQ(back.session, 17u);
  EXPECT_EQ(back.delta.departures, delta.departures);
  EXPECT_EQ(back.priority, 3);
}

TEST(OnlineSerializeTest, MigrationFieldsRoundTripOnResults) {
  api::SolveResult result;
  result.status = api::SolveStatus::Feasible;
  result.makespan = 4.0;
  result.moved_jobs = 7;
  result.migration_ratio = 0.25;
  const api::SolveResult back =
      api::solve_result_from_json(api::to_json(result, false));
  EXPECT_EQ(back.moved_jobs, 7);
  EXPECT_DOUBLE_EQ(back.migration_ratio, 0.25);
  // A plain solve result stays marked "not a delta result".
  api::SolveResult plain;
  plain.status = api::SolveStatus::Feasible;
  EXPECT_EQ(api::solve_result_from_json(api::to_json(plain, false)).moved_jobs,
            -1);
}

}  // namespace
}  // namespace bagsched
