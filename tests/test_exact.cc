// Tests for the exact branch-and-bound solver (the ground-truth oracle).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/exact.h"
#include "sched/local_search.h"

namespace bagsched {
namespace {

using model::Instance;

TEST(ExactTest, TrivialSingleMachine) {
  const Instance instance = Instance::without_bags({1, 2, 3}, 1);
  const auto result = sched::solve_exact(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(ExactTest, PerfectSplit) {
  // {4,3,2,1} on 2 machines: OPT = 5 ({4,1} | {3,2}).
  const Instance instance = Instance::without_bags({4, 3, 2, 1}, 2);
  const auto result = sched::solve_exact(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
}

TEST(ExactTest, BagConstraintRaisesOptimum) {
  // Two jobs {3, 3} in one bag on 2 machines must split: OPT = 3.
  // Without the bag they could... also split. Make it interesting: jobs
  // {3,3} same bag + {2,2} same bag: pairs must split -> OPT = 5.
  const Instance instance =
      Instance::from_vectors({3, 3, 2, 2}, {0, 0, 1, 1}, 2);
  const auto result = sched::solve_exact(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
}

TEST(ExactTest, MatchesPlantedOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::PlantedParams params;
    params.num_machines = 4;
    params.min_jobs_per_machine = 2;
    params.max_jobs_per_machine = 4;
    params.num_bags = 8;
    params.seed = seed;
    const auto planted = gen::planted(params);
    const auto result = sched::solve_exact(planted.instance);
    ASSERT_TRUE(result.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(result.makespan, planted.opt, 1e-9) << "seed " << seed;
  }
}

TEST(ExactTest, NeverBelowLowerBoundNeverAboveLocalSearch) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = gen::by_name("twopoint", 14, 3, seed);
    const auto result = sched::solve_exact(instance);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
    EXPECT_GE(result.makespan,
              model::combined_lower_bound(instance) - 1e-9);
    const double heuristic =
        sched::local_search(instance).makespan(instance);
    EXPECT_LE(result.makespan, heuristic + 1e-9);
  }
}

TEST(ExactTest, Figure1Optimum) {
  const auto planted = gen::figure1({.num_machines = 4, .scale = 1.0,
                                     .seed = 1});
  const auto result = sched::solve_exact(planted.instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.makespan, 1.0, 1e-9);
}

TEST(ExactTest, BudgetExhaustionStillFeasible) {
  const Instance instance = gen::by_name("uniform", 40, 6, 3);
  sched::ExactOptions options;
  options.max_nodes = 100;  // far too little to prove optimality
  const auto result = sched::solve_exact(instance, options);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  EXPECT_GT(result.makespan, 0.0);
}

}  // namespace
}  // namespace bagsched
