// Quickstart: build an instance, solve it through the unified API, inspect
// the schedule.
//
//   $ ./quickstart
//
// Walks through the core types (Instance, SolverRegistry, SolveResult,
// Portfolio) on a small hand-made workload.
#include <iostream>

#include "api/api.h"

int main() {
  using namespace bagsched;

  // Ten jobs on three machines. Jobs 0-2 are replicas of one service and
  // must run on distinct machines (bag 0); likewise jobs 3-4 (bag 1); the
  // rest are independent singletons.
  const std::vector<double> sizes{3.0, 3.0, 3.0, 2.0, 2.0,
                                  1.5, 1.0, 1.0, 0.5, 0.5};
  const std::vector<model::BagId> bags{0, 0, 0, 1, 1, 2, 3, 4, 5, 6};
  const model::Instance instance =
      model::Instance::from_vectors(sizes, bags, /*num_machines=*/3);

  std::cout << "instance: " << model::describe(instance) << "\n";
  std::cout << "lower bound on OPT: "
            << model::combined_lower_bound(instance) << "\n\n";

  // Solve with the EPTAS at eps = 1/3 through the registry.
  const auto& eptas = api::SolverRegistry::global().resolve("eptas");
  const auto result = eptas.solve(instance, {.eps = 1.0 / 3.0});

  std::cout << "status: " << api::to_string(result.status)
            << ", makespan: " << result.makespan
            << " (gap <= " << 100.0 * result.optimality_gap << "%)\n";
  std::cout << "guesses tried: " << api::stat_int(result.stats, "guesses")
            << ", pattern columns: "
            << api::stat_int(result.stats, "columns") << "\n\n";

  // Print the schedule machine by machine.
  const auto per_machine = result.schedule.machine_jobs();
  for (std::size_t machine = 0; machine < per_machine.size(); ++machine) {
    double load = 0.0;
    std::cout << "machine " << machine << ":";
    for (const model::JobId job : per_machine[machine]) {
      std::cout << " job" << job << "(p=" << instance.job(job).size
                << ",bag=" << instance.job(job).bag << ")";
      load += instance.job(job).size;
    }
    std::cout << "  -> load " << load << "\n";
  }
  std::cout << "\nschedule valid: "
            << (result.schedule_feasible ? "yes" : "no") << "\n\n";

  // Or race a portfolio of solvers and keep the best feasible schedule.
  api::Portfolio portfolio;  // eptas + local-search + multifit + ...
  const auto race = portfolio.solve(instance, {.eps = 1.0 / 3.0});
  std::cout << "portfolio best: " << race.best.solver << " at makespan "
            << race.best.makespan << " (" << race.runs.size()
            << " solvers, " << race.cancelled_count << " cancelled)\n";
  return result.schedule_feasible && race.ok() ? 0 : 1;
}
