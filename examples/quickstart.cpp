// Quickstart: build an instance, run the EPTAS, inspect the schedule.
//
//   $ ./quickstart
//
// Walks through the three core types (Instance, Schedule, EptasResult) on a
// small hand-made workload.
#include <iostream>

#include "eptas/eptas.h"
#include "model/instance.h"
#include "model/lower_bounds.h"
#include "model/schedule.h"

int main() {
  using namespace bagsched;

  // Ten jobs on three machines. Jobs 0-2 are replicas of one service and
  // must run on distinct machines (bag 0); likewise jobs 3-4 (bag 1); the
  // rest are independent singletons.
  const std::vector<double> sizes{3.0, 3.0, 3.0, 2.0, 2.0,
                                  1.5, 1.0, 1.0, 0.5, 0.5};
  const std::vector<model::BagId> bags{0, 0, 0, 1, 1, 2, 3, 4, 5, 6};
  const model::Instance instance =
      model::Instance::from_vectors(sizes, bags, /*num_machines=*/3);

  std::cout << "instance: " << model::describe(instance) << "\n";
  std::cout << "lower bound on OPT: "
            << model::combined_lower_bound(instance) << "\n\n";

  // Run the EPTAS with approximation parameter eps = 1/3.
  const auto result = eptas::eptas_schedule(instance, 1.0 / 3.0);

  std::cout << "makespan: " << result.makespan << "\n";
  std::cout << "guesses tried: " << result.stats.guesses_tried
            << ", pattern columns: " << result.stats.columns << "\n\n";

  // Print the schedule machine by machine.
  const auto per_machine = result.schedule.machine_jobs();
  for (std::size_t machine = 0; machine < per_machine.size(); ++machine) {
    double load = 0.0;
    std::cout << "machine " << machine << ":";
    for (const model::JobId job : per_machine[machine]) {
      std::cout << " job" << job << "(p=" << instance.job(job).size
                << ",bag=" << instance.job(job).bag << ")";
      load += instance.job(job).size;
    }
    std::cout << "  -> load " << load << "\n";
  }

  // The validator confirms completeness and the bag-constraints.
  const auto validation = model::validate(instance, result.schedule);
  std::cout << "\nschedule valid: " << (validation.ok() ? "yes" : "no")
            << "\n";
  return validation.ok() ? 0 : 1;
}
