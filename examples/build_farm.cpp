// Build-farm scheduling: CI pipelines with per-pipeline machine exclusion.
//
//   $ ./build_farm [instance-file]
//
// A CI provider runs build/test jobs on a farm of identical agents. Jobs of
// the same pipeline must not share an agent (they hold conflicting locks on
// the pipeline's cache volume) — each pipeline is a bag. The example builds
// a realistic farm workload (or loads one from the bagsched text format),
// schedules it through the unified API, saves the instance and schedule to
// disk, and prints a utilization report.
#include <fstream>
#include <iostream>

#include "api/api.h"
#include "model/io.h"
#include "util/csv.h"
#include "util/prng.h"

namespace {

bagsched::model::Instance make_farm_workload() {
  using bagsched::model::BagId;
  bagsched::util::Xoshiro256 rng(7);
  std::vector<double> sizes;
  std::vector<BagId> bags;
  BagId pipeline = 0;
  // 12 "monorepo" pipelines: one heavy build + several test shards.
  for (int p = 0; p < 12; ++p, ++pipeline) {
    sizes.push_back(rng.uniform_real(15.0, 40.0));  // the build, minutes
    bags.push_back(pipeline);
    const int shards = static_cast<int>(rng.uniform_int(2, 5));
    for (int s = 0; s < shards; ++s) {
      sizes.push_back(rng.uniform_real(4.0, 12.0));  // test shards
      bags.push_back(pipeline);
    }
  }
  // 30 small independent lint/doc jobs, each its own pipeline.
  for (int p = 0; p < 30; ++p, ++pipeline) {
    sizes.push_back(rng.uniform_real(0.5, 3.0));
    bags.push_back(pipeline);
  }
  return bagsched::model::Instance::from_vectors(sizes, bags,
                                                 /*num_machines=*/10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bagsched;

  model::Instance instance =
      argc > 1 ? model::load_instance(argv[1]) : make_farm_workload();
  std::cout << "build farm: " << model::describe(instance) << "\n";

  const auto result = api::solve("eptas", instance, {.eps = 0.25});
  if (!result.ok() || !result.schedule_feasible) {
    std::cerr << "error: " << (result.error.empty() ? "no feasible schedule"
                                                    : result.error)
              << "\n";
    return 1;
  }

  std::cout << "wall-clock (makespan): " << result.makespan
            << " min, lower bound " << result.lower_bound << " min, gap "
            << 100.0 * result.optimality_gap << "% (solved in "
            << result.wall_seconds << " s)\n\n";

  // Per-agent utilization report.
  util::Table table({"agent", "jobs", "load_min", "utilization"});
  const auto loads = result.schedule.loads(instance);
  const auto per_machine = result.schedule.machine_jobs();
  for (std::size_t agent = 0; agent < loads.size(); ++agent) {
    table.row()
        .add(static_cast<long long>(agent))
        .add(static_cast<long long>(per_machine[agent].size()))
        .add(loads[agent], 1)
        .add(loads[agent] / result.makespan, 3);
  }
  table.write_aligned(std::cout);

  // Persist both artifacts in the bagsched text formats.
  model::save_instance("build_farm.instance", instance);
  {
    std::ofstream out("build_farm.schedule");
    model::write_schedule(out, result.schedule);
  }
  std::cout << "\nwrote build_farm.instance and build_farm.schedule\n";
  return 0;
}
