// solve_service — the asynchronous service workflow end to end.
//
//   $ ./solve_service [num_requests] [threads]      (defaults: 12, 4)
//
// Demonstrates the SchedulingService surface:
//   1. batch-submit a mixed workload (different families/sizes/priorities)
//      over a bounded pool and collect every handle at once;
//   2. stream progress (incumbent makespans + phase transitions) for one
//      watched request while the batch runs;
//   3. enforce a 150 ms deadline on a deliberately oversized exact solve —
//      the handle resolves with SolveStatus::Cancelled carrying the best
//      incumbent found before the stop;
//   4. print the per-request table and one result as JSON (the shape that
//      crosses process boundaries).
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"

namespace {

namespace api = bagsched::api;

const char* kFamilies[] = {"uniform", "twopoint", "replica"};

}  // namespace

int main(int argc, char** argv) {
  const int num_requests = argc > 1 ? std::stoi(argv[1]) : 12;
  const std::size_t threads = argc > 2 ? std::stoul(argv[2]) : 4;

  api::SchedulingService service(
      {.num_threads = threads, .max_concurrent = threads});
  std::cout << "service: " << service.num_threads() << " threads, "
            << num_requests << " requests\n";

  // --- 1. A mixed batch: every request its own family/size/priority. ----
  std::vector<api::SolveRequest> batch;
  for (int i = 0; i < num_requests; ++i) {
    api::SolveOptions options;
    options.eps = 0.5;
    options.seed = static_cast<std::uint64_t>(i + 1);
    auto request = api::make_request(
        api::make_instance(kFamilies[i % 3], 60 + 20 * (i % 4), 8, options),
        options, {"local-search"});
    request.priority = i % 3;  // mixed priorities through the queue
    batch.push_back(std::move(request));
  }

  // --- 2. One watched request streams progress while the batch runs. ----
  api::SolveOptions watched_options;
  watched_options.eps = 0.5;
  watched_options.seed = 7;
  auto watched = api::make_request(
      api::make_instance("uniform", 18, 4, watched_options), watched_options,
      {"exact"});
  watched.priority = 10;
  watched.on_progress = [](const api::ProgressEvent& event) {
    std::cout << "  [watched +" << std::fixed << std::setprecision(4)
              << event.elapsed_seconds << "s] " << api::to_string(event.kind);
    if (event.kind == api::ProgressKind::Incumbent) {
      std::cout << " makespan=" << event.incumbent_makespan;
    }
    if (event.kind == api::ProgressKind::Phase) {
      std::cout << " " << event.phase;
    }
    std::cout << "\n";
  };

  // --- 3. A deadline-bound exact solve that cannot finish in time. ------
  api::SolveOptions doomed_options;
  doomed_options.seed = 3;
  doomed_options.time_limit_seconds = 30.0;  // deadline cuts far earlier
  auto doomed = api::make_request(
      api::make_instance("uniform", 60, 8, doomed_options), doomed_options,
      {"exact"});
  doomed.deadline = api::deadline_in(0.150);

  auto handles = service.submit_batch(std::move(batch));
  auto watched_handle = service.submit(std::move(watched));
  auto doomed_handle = service.submit(std::move(doomed));

  // --- Collect. ----------------------------------------------------------
  std::cout << "\nbatch results:\n";
  std::cout << std::setw(4) << "id" << std::setw(14) << "solver"
            << std::setw(12) << "status" << std::setw(12) << "makespan"
            << std::setw(10) << "gap%" << std::setw(10) << "wall_ms"
            << "\n";
  for (auto& handle : handles) {
    const api::SolveResult& result = handle.wait();
    std::cout << std::setw(4) << handle.id() << std::setw(14) << result.solver
              << std::setw(12) << api::to_string(result.status)
              << std::setw(12) << std::fixed << std::setprecision(3)
              << result.makespan << std::setw(10) << std::setprecision(2)
              << 100.0 * result.optimality_gap << std::setw(10)
              << std::setprecision(2) << 1e3 * result.wall_seconds << "\n";
  }

  const api::SolveResult& watched_result = watched_handle.wait();
  std::cout << "\nwatched request resolved: "
            << api::to_string(watched_result.status) << ", makespan "
            << watched_result.makespan << "\n";

  const api::SolveResult& doomed_result = doomed_handle.wait();
  std::cout << "deadline-bound exact: " << api::to_string(doomed_result.status)
            << " after " << std::setprecision(3) << doomed_result.wall_seconds
            << " s, incumbent makespan " << doomed_result.makespan
            << " (feasible: " << (doomed_result.schedule_feasible ? "yes"
                                                                  : "no")
            << ")\n";

  service.wait_idle();  // settle the bookkeeping before reading stats
  const auto stats = service.stats();
  std::cout << "\nservice stats: submitted " << stats.submitted
            << ", finished " << stats.finished << ", rejected "
            << stats.rejected << "\n";

  // --- 4. Results are JSON for anything beyond this process. -----------
  std::cout << "\nwatched result as JSON:\n"
            << api::to_json(watched_result, /*include_schedule=*/false)
                   .dump(2)
            << "\n";
  return 0;
}
