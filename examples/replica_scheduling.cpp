// Replica scheduling — the paper's motivating scenario (§1.1): replicas of
// a task must run on distinct machines so one machine failure cannot take
// out every copy. All replicas of a task form one bag.
//
//   $ ./replica_scheduling [tasks] [replicas] [machines]
//
// Compares the naive greedy placement, bag-LPT, local search and the EPTAS
// on a randomly drawn replica workload and reports how much headroom each
// scheduler leaves.
#include <cstdlib>
#include <iostream>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/bag_lpt.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace bagsched;

  gen::ReplicaParams params;
  params.tasks = argc > 1 ? std::atoi(argv[1]) : 24;
  params.replicas = argc > 2 ? std::atoi(argv[2]) : 3;
  params.num_machines = argc > 3 ? std::atoi(argv[3]) : 8;
  params.seed = 2026;

  if (params.replicas > params.num_machines) {
    std::cerr << "error: need at least as many machines as replicas\n";
    return 1;
  }

  const model::Instance instance = gen::replica(params);
  const double lower = model::combined_lower_bound(instance);
  std::cout << "replica workload: " << params.tasks << " tasks x "
            << params.replicas << " replicas on " << params.num_machines
            << " machines (" << model::describe(instance) << ")\n\n";

  util::Table table({"scheduler", "makespan", "vs_lower_bound"});
  auto report = [&](const std::string& name,
                    const model::Schedule& schedule) {
    model::require_valid(instance, schedule, name);
    const double makespan = schedule.makespan(instance);
    table.row().add(name).add(makespan, 4).add(makespan / lower, 4);
  };

  report("greedy", sched::greedy_bags(instance));
  report("bag-LPT", sched::bag_lpt(instance));
  report("local-search", sched::local_search(instance));
  const auto eptas_result = eptas::eptas_schedule(instance, 1.0 / 3.0);
  report("eptas(1/3)", eptas_result.schedule);

  table.write_aligned(std::cout);

  // Failure-domain check: verify no machine carries two replicas of any
  // task (this is exactly the bag-constraint, re-asserted explicitly).
  const auto per_machine = eptas_result.schedule.machine_jobs();
  for (std::size_t machine = 0; machine < per_machine.size(); ++machine) {
    std::vector<bool> seen(static_cast<std::size_t>(instance.num_bags()),
                           false);
    for (const model::JobId job : per_machine[machine]) {
      const auto task = instance.job(job).bag;
      if (seen[static_cast<std::size_t>(task)]) {
        std::cerr << "replica collision on machine " << machine << "!\n";
        return 1;
      }
      seen[static_cast<std::size_t>(task)] = true;
    }
  }
  std::cout << "\nevery task survives any single machine failure: yes\n";
  return 0;
}
