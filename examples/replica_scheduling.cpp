// Replica scheduling — the paper's motivating scenario (§1.1): replicas of
// a task must run on distinct machines so one machine failure cannot take
// out every copy. All replicas of a task form one bag.
//
//   $ ./replica_scheduling [tasks] [replicas] [machines]
//
// Compares the registered schedulers on a randomly drawn replica workload,
// then races them as a portfolio and reports how much headroom each leaves.
#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace bagsched;

  gen::ReplicaParams params;
  params.tasks = argc > 1 ? std::atoi(argv[1]) : 24;
  params.replicas = argc > 2 ? std::atoi(argv[2]) : 3;
  params.num_machines = argc > 3 ? std::atoi(argv[3]) : 8;
  params.seed = 2026;

  if (params.replicas > params.num_machines) {
    std::cerr << "error: need at least as many machines as replicas\n";
    return 1;
  }

  const model::Instance instance = gen::replica(params);
  const double lower = model::combined_lower_bound(instance);
  std::cout << "replica workload: " << params.tasks << " tasks x "
            << params.replicas << " replicas on " << params.num_machines
            << " machines (" << model::describe(instance) << ")\n\n";

  api::SolveOptions options;
  options.eps = 1.0 / 3.0;
  options.seed = params.seed;

  util::Table table({"scheduler", "makespan", "vs_lower_bound", "seconds"});
  const std::vector<std::string> contenders{"greedy-bags", "bag-lpt",
                                            "local-search", "eptas"};
  for (const auto& name : contenders) {
    const auto result = api::solve(name, instance, options);
    if (!result.schedule_feasible) {
      std::cerr << name << " produced an invalid schedule!\n";
      return 1;
    }
    table.row()
        .add(name)
        .add(result.makespan, 4)
        .add(result.makespan / lower, 4)
        .add(result.wall_seconds, 4);
  }
  table.write_aligned(std::cout);

  // The same contenders as a parallel portfolio: one call, best schedule,
  // stragglers cancelled once the EPTAS certificate lands.
  api::Portfolio portfolio(contenders);
  const auto race = portfolio.solve(instance, options);
  std::cout << "\nportfolio winner: " << race.best.solver << " at makespan "
            << race.best.makespan << " (wall " << race.wall_seconds
            << " s, " << race.cancelled_count << " solvers cancelled)\n";

  // Failure-domain check: verify no machine carries two replicas of any
  // task (this is exactly the bag-constraint, re-asserted explicitly).
  const auto per_machine = race.best.schedule.machine_jobs();
  for (std::size_t machine = 0; machine < per_machine.size(); ++machine) {
    std::vector<bool> seen(static_cast<std::size_t>(instance.num_bags()),
                           false);
    for (const model::JobId job : per_machine[machine]) {
      const auto task = instance.job(job).bag;
      if (seen[static_cast<std::size_t>(task)]) {
        std::cerr << "replica collision on machine " << machine << "!\n";
        return 1;
      }
      seen[static_cast<std::size_t>(task)] = true;
    }
  }
  std::cout << "every task survives any single machine failure: yes\n";
  return 0;
}
