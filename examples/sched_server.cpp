// sched_server — the network-facing scheduler daemon.
//
//   $ ./sched_server --port 7411 --threads 4 --max-queue 256
//   listening on 127.0.0.1:7411
//
// Serves the NDJSON wire protocol (DESIGN.md §5) over TCP: clients submit
// solve requests, stream Queued/Started/Phase/Incumbent/Finished progress
// frames back on the same connection, and scrape Prometheus metrics via
// `GET /metrics` on the same port. SIGTERM/SIGINT trigger a graceful
// drain: the listener closes, in-flight solves get --drain-grace seconds
// to finish, every Finished frame is flushed, and the process exits 0.
//
// Durability (--journal-dir, DESIGN.md §8): session opens and committed
// deltas are appended to a write-ahead journal before they are
// acknowledged. On boot the journal is replayed — the port is already
// bound and /healthz answers 503 "recovering" so probes see progress —
// then the recovered sessions are parked in the --session-linger window
// for their clients to reclaim with resume_session, and the journal is
// compacted to a snapshot. SIGHUP snapshots + rotates the journal on a
// live server.
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "net/server.h"
#include "persist/journal.h"
#include "util/fault.h"

namespace {

int usage() {
  std::cerr <<
      "usage: sched_server [--port <p>] [--bind <addr>] [--threads <n>]\n"
      "                    [--max-concurrent <n>] [--max-queue <n>]\n"
      "                    [--drain-grace <seconds>]\n"
      "                    [--request-budget <seconds>]\n"
      "                    [--stuck-grace <seconds>]\n"
      "                    [--brownout-latency <seconds>]\n"
      "                    [--journal-dir <dir>] [--fsync <policy>]\n"
      "                    [--fsync-interval <seconds>]\n"
      "                    [--snapshot-every <n>]\n"
      "                    [--session-linger <seconds>]\n"
      "\n"
      "  --port            TCP port (default 0 = ephemeral, printed)\n"
      "  --bind            bind address (default 127.0.0.1)\n"
      "  --threads         solver worker threads (default: hardware)\n"
      "  --max-concurrent  solves running at once (default: pool size)\n"
      "  --max-queue       pending-queue cap; beyond it submits are\n"
      "                    rejected with a structured error frame\n"
      "                    (default 0 = unbounded)\n"
      "  --drain-grace     seconds in-flight solves may keep running\n"
      "                    after SIGTERM before cancellation (default 5)\n"
      "  --request-budget  per-request wall-clock budget; past it the\n"
      "                    request is cancelled, and a solver stuck past\n"
      "                    the extra grace is escalated to a terminal\n"
      "                    \"timeout\" error frame (default 0 = unlimited)\n"
      "  --stuck-grace     grace between the budget cancel and the\n"
      "                    stuck-solver escalation (default 2)\n"
      "  --brownout-latency  queue-wait EWMA (seconds) above which new\n"
      "                    submits degrade to bag-lpt answers flagged\n"
      "                    degraded:true (default 0 = disabled)\n"
      "  --journal-dir     write-ahead journal directory: sessions survive\n"
      "                    a crash and are replayed on the next boot. The\n"
      "                    directory must exist, be writable, and not be\n"
      "                    held by another live server (default: no\n"
      "                    journal, sessions are in-memory only)\n"
      "  --fsync           journal durability: always | interval | off\n"
      "                    (default interval)\n"
      "  --fsync-interval  seconds between fsyncs under --fsync interval\n"
      "                    (default 0.1)\n"
      "  --snapshot-every  compact the journal to a snapshot every N\n"
      "                    appended records (default 4096)\n"
      "  --session-linger  seconds a disconnected client's sessions stay\n"
      "                    resumable before they are closed (default 30\n"
      "                    with a journal, 0 without)\n"
      "\n"
      "  GET /healthz answers 200 ok / 503 recovering / 503 draining.\n"
      "  SIGHUP snapshots + rotates the journal without a restart.\n"
      "  BAGSCHED_FAULTS / BAGSCHED_FAULT_SEED enable deterministic fault\n"
      "  injection for resilience testing (see src/util/fault.h).\n";
  return 2;
}

// Self-pipe: the signal handler only writes one byte (async-signal-safe);
// main() blocks on the read end and runs the drain (or, for SIGHUP, the
// snapshot) from normal context. The byte value carries which signal.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;  // drain + exit
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void on_sighup(int) {
  const char byte = 2;  // snapshot + rotate the journal, keep serving
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bagsched;
  net::ServerConfig config;
  persist::JournalConfig journal_config;
  bool with_journal = false;
  double session_linger_seconds = -1.0;  // -1 = pick the default below
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const bool has_value = i + 1 < args.size();
      if (args[i] == "--port" && has_value) {
        const int port = std::stoi(args[++i]);
        if (port < 0 || port > 65535) throw std::runtime_error("bad --port");
        config.port = static_cast<std::uint16_t>(port);
      } else if (args[i] == "--bind" && has_value) {
        config.bind_address = args[++i];
      } else if (args[i] == "--threads" && has_value) {
        config.service.num_threads =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--max-concurrent" && has_value) {
        config.service.max_concurrent =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--max-queue" && has_value) {
        config.service.max_queue_depth =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--drain-grace" && has_value) {
        config.drain_grace_seconds = std::stod(args[++i]);
      } else if (args[i] == "--request-budget" && has_value) {
        config.request_budget_seconds = std::stod(args[++i]);
      } else if (args[i] == "--stuck-grace" && has_value) {
        config.stuck_grace_seconds = std::stod(args[++i]);
      } else if (args[i] == "--brownout-latency" && has_value) {
        config.brownout_queue_latency_seconds = std::stod(args[++i]);
      } else if (args[i] == "--journal-dir" && has_value) {
        journal_config.dir = args[++i];
        with_journal = true;
      } else if (args[i] == "--fsync" && has_value) {
        journal_config.fsync = persist::fsync_policy_from_string(args[++i]);
      } else if (args[i] == "--fsync-interval" && has_value) {
        journal_config.fsync_interval_seconds = std::stod(args[++i]);
      } else if (args[i] == "--snapshot-every" && has_value) {
        journal_config.snapshot_every =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--session-linger" && has_value) {
        session_linger_seconds = std::stod(args[++i]);
        if (session_linger_seconds < 0.0) {
          throw std::runtime_error("--session-linger must be >= 0");
        }
      } else {
        std::cerr << "unknown or incomplete flag: " << args[i] << "\n";
        return usage();
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return usage();
  }
  // With a journal, orphaned sessions should survive long enough for their
  // client to reconnect; without one there is nothing durable to resume.
  config.session_linger_seconds =
      session_linger_seconds >= 0.0 ? session_linger_seconds
      : with_journal                ? 30.0
                                    : 0.0;

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "error: cannot create signal pipe\n";
    return 1;
  }

  try {
    if (util::fault::configure_from_env()) {
      std::cerr << "fault injection ENABLED (BAGSCHED_FAULTS, seed "
                << util::fault::seed() << ") — not for production\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: bad BAGSCHED_FAULTS: " << error.what() << "\n";
    return 2;
  }

  // Open the journal before anything else: a missing, unwritable or locked
  // --journal-dir must fail fast with a clear message, not after the port
  // is bound. Declared before the server so it outlives it (the service
  // holds a raw pointer).
  std::unique_ptr<persist::SessionJournal> journal;
  if (with_journal) {
    try {
      journal = std::make_unique<persist::SessionJournal>(journal_config);
    } catch (const std::exception& error) {
      std::cerr << "error: --journal-dir " << journal_config.dir << ": "
                << error.what() << "\n";
      return 2;
    }
  }

  try {
    config.service.journal = journal.get();
    config.start_recovering = journal != nullptr;
    net::SchedServer server(config);
    server.start();
    std::cout << "listening on " << config.bind_address << ":"
              << server.port() << std::endl;

    // Replay happens with the port already bound: probes get their 503
    // "recovering" (and frames a structured "recovering" error) instead of
    // a connection refused, so a balancer can tell "booting" from "down".
    if (journal != nullptr) {
      const persist::RecoveredState recovered = journal->replay();
      const std::size_t restored = server.service().restore_sessions(recovered);
      std::vector<std::uint64_t> orphans;
      orphans.reserve(restored);
      for (const persist::RecoveredSession& entry : recovered.sessions) {
        if (server.service().session_info(entry.session).has_value()) {
          orphans.push_back(entry.session);
        }
      }
      server.adopt_orphans(orphans);
      // Compact what was just replayed so the next boot starts from one
      // snapshot record instead of the whole history.
      journal->snapshot();
      server.set_ready();
      std::cout << "recovered " << restored << " session(s) from "
                << recovered.records_replayed << " journal record(s)";
      if (recovered.truncated_bytes > 0) {
        std::cout << " (truncated " << recovered.truncated_bytes
                  << " torn byte(s))";
      }
      std::cout << std::endl;
    }

    struct sigaction action = {};
    action.sa_handler = on_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    struct sigaction hup = {};
    hup.sa_handler = on_sighup;
    ::sigaction(SIGHUP, &hup, nullptr);

    for (;;) {
      char byte = 0;
      const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0 || byte != 2) break;  // SIGTERM/SIGINT (or pipe gone)
      // SIGHUP: snapshot + rotate without a restart — the operator's
      // "compact now" knob (e.g. before copying the journal off-host).
      if (journal != nullptr) {
        try {
          journal->snapshot();
          std::cout << "journal rotated: snapshot of "
                    << journal->stats().live_sessions
                    << " live session(s)" << std::endl;
        } catch (const std::exception& error) {
          std::cerr << "journal rotation failed (journal kept): "
                    << error.what() << "\n";
        }
      }
    }
    std::cout << "draining..." << std::endl;
    server.request_drain();
    server.wait();
    const auto counters = server.counters();
    std::cout << "drained: " << counters.connections_accepted
              << " connections served, " << counters.frames_in
              << " frames in, " << counters.frames_out << " frames out\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
