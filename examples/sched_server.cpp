// sched_server — the network-facing scheduler daemon.
//
//   $ ./sched_server --port 7411 --threads 4 --max-queue 256
//   listening on 127.0.0.1:7411
//
// Serves the NDJSON wire protocol (DESIGN.md §5) over TCP: clients submit
// solve requests, stream Queued/Started/Phase/Incumbent/Finished progress
// frames back on the same connection, and scrape Prometheus metrics via
// `GET /metrics` on the same port. SIGTERM/SIGINT trigger a graceful
// drain: the listener closes, in-flight solves get --drain-grace seconds
// to finish, every Finished frame is flushed, and the process exits 0.
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "net/server.h"
#include "util/fault.h"

namespace {

int usage() {
  std::cerr <<
      "usage: sched_server [--port <p>] [--bind <addr>] [--threads <n>]\n"
      "                    [--max-concurrent <n>] [--max-queue <n>]\n"
      "                    [--drain-grace <seconds>]\n"
      "                    [--request-budget <seconds>]\n"
      "                    [--stuck-grace <seconds>]\n"
      "                    [--brownout-latency <seconds>]\n"
      "\n"
      "  --port            TCP port (default 0 = ephemeral, printed)\n"
      "  --bind            bind address (default 127.0.0.1)\n"
      "  --threads         solver worker threads (default: hardware)\n"
      "  --max-concurrent  solves running at once (default: pool size)\n"
      "  --max-queue       pending-queue cap; beyond it submits are\n"
      "                    rejected with a structured error frame\n"
      "                    (default 0 = unbounded)\n"
      "  --drain-grace     seconds in-flight solves may keep running\n"
      "                    after SIGTERM before cancellation (default 5)\n"
      "  --request-budget  per-request wall-clock budget; past it the\n"
      "                    request is cancelled, and a solver stuck past\n"
      "                    the extra grace is escalated to a terminal\n"
      "                    \"timeout\" error frame (default 0 = unlimited)\n"
      "  --stuck-grace     grace between the budget cancel and the\n"
      "                    stuck-solver escalation (default 2)\n"
      "  --brownout-latency  queue-wait EWMA (seconds) above which new\n"
      "                    submits degrade to bag-lpt answers flagged\n"
      "                    degraded:true (default 0 = disabled)\n"
      "\n"
      "  GET /healthz on the serving port answers 200 ok / 503 draining.\n"
      "  BAGSCHED_FAULTS / BAGSCHED_FAULT_SEED enable deterministic fault\n"
      "  injection for resilience testing (see src/util/fault.h).\n";
  return 2;
}

// Self-pipe: the signal handler only writes one byte (async-signal-safe);
// main() blocks on the read end and runs the drain from normal context.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bagsched;
  net::ServerConfig config;
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const bool has_value = i + 1 < args.size();
      if (args[i] == "--port" && has_value) {
        const int port = std::stoi(args[++i]);
        if (port < 0 || port > 65535) throw std::runtime_error("bad --port");
        config.port = static_cast<std::uint16_t>(port);
      } else if (args[i] == "--bind" && has_value) {
        config.bind_address = args[++i];
      } else if (args[i] == "--threads" && has_value) {
        config.service.num_threads =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--max-concurrent" && has_value) {
        config.service.max_concurrent =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--max-queue" && has_value) {
        config.service.max_queue_depth =
            static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--drain-grace" && has_value) {
        config.drain_grace_seconds = std::stod(args[++i]);
      } else if (args[i] == "--request-budget" && has_value) {
        config.request_budget_seconds = std::stod(args[++i]);
      } else if (args[i] == "--stuck-grace" && has_value) {
        config.stuck_grace_seconds = std::stod(args[++i]);
      } else if (args[i] == "--brownout-latency" && has_value) {
        config.brownout_queue_latency_seconds = std::stod(args[++i]);
      } else {
        std::cerr << "unknown or incomplete flag: " << args[i] << "\n";
        return usage();
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return usage();
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "error: cannot create signal pipe\n";
    return 1;
  }

  try {
    if (util::fault::configure_from_env()) {
      std::cerr << "fault injection ENABLED (BAGSCHED_FAULTS, seed "
                << util::fault::seed() << ") — not for production\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: bad BAGSCHED_FAULTS: " << error.what() << "\n";
    return 2;
  }

  try {
    net::SchedServer server(config);
    server.start();
    std::cout << "listening on " << config.bind_address << ":"
              << server.port() << std::endl;

    struct sigaction action = {};
    action.sa_handler = on_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::cout << "draining..." << std::endl;
    server.request_drain();
    server.wait();
    const auto counters = server.counters();
    std::cout << "drained: " << counters.connections_accepted
              << " connections served, " << counters.frames_in
              << " frames in, " << counters.frames_out << " frames out\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
