// Algorithm comparison across workload families.
//
//   $ ./algorithm_comparison [n] [m] [seeds]
//
// Runs every scheduler in the library over every generator family and
// prints one ratio table — a miniature of the E9 benchmark that users can
// point at their own parameters.
#include <cstdlib>
#include <iostream>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/bag_lpt.h"
#include "sched/exact.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "sched/multifit.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace bagsched;

  const int n = argc > 1 ? std::atoi(argv[1]) : 36;
  const int m = argc > 2 ? std::atoi(argv[2]) : 6;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 3;

  std::cout << "comparing schedulers: n=" << n << " m=" << m
            << " seeds=" << seeds << " eps=0.5\n\n";

  util::Table table({"family", "greedy", "bag_lpt", "multifit", "local",
                     "eptas", "exact*"});
  for (const auto& family : gen::family_names()) {
    double greedy = 0, baglpt = 0, mf = 0, local = 0, ep = 0, exact = 0;
    int exact_solved = 0;
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
         ++seed) {
      const model::Instance instance = gen::by_name(family, n, m, seed);
      const double lower = model::combined_lower_bound(instance);
      greedy += sched::greedy_bags(instance).makespan(instance) / lower;
      baglpt += sched::bag_lpt(instance).makespan(instance) / lower;
      mf += sched::multifit(instance).makespan(instance) / lower;
      local += sched::local_search(instance).makespan(instance) / lower;
      ep += eptas::eptas_schedule(instance, 0.5).makespan / lower;
      if (n <= 20) {
        const auto result = sched::solve_exact(instance);
        if (result.proven_optimal) {
          exact += result.makespan / lower;
          ++exact_solved;
        }
      }
    }
    table.row()
        .add(family)
        .add(greedy / seeds, 4)
        .add(baglpt / seeds, 4)
        .add(mf / seeds, 4)
        .add(local / seeds, 4)
        .add(ep / seeds, 4)
        .add(exact_solved > 0 ? std::to_string(exact / exact_solved)
                              : std::string("-"));
  }
  table.write_aligned(std::cout);
  std::cout << "\nall values are makespan / combined-lower-bound, averaged "
               "over seeds.\nexact* only runs when n <= 20.\n";
  return 0;
}
