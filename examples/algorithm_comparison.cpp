// Algorithm comparison across workload families.
//
//   $ ./algorithm_comparison [n] [m] [seeds]
//
// Runs every bag-respecting solver in the registry over every generator
// family and prints one ratio table — a miniature of the E9 benchmark that
// users can point at their own parameters.
#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace bagsched;

  const int n = argc > 1 ? std::atoi(argv[1]) : 36;
  const int m = argc > 2 ? std::atoi(argv[2]) : 6;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 3;

  std::cout << "comparing schedulers: n=" << n << " m=" << m
            << " seeds=" << seeds << " eps=0.5\n\n";

  // Every bag-respecting solver; "exact" only when small enough to finish.
  std::vector<std::string> solvers;
  for (const auto* solver : api::SolverRegistry::global().all()) {
    const auto& info = solver->info();
    if (!info.respects_bags) continue;
    if (info.name == "exact" && n > 20) continue;
    if (info.name == "milp" && n * m > 150) continue;
    solvers.push_back(info.name);
  }

  std::vector<std::string> header{"family"};
  header.insert(header.end(), solvers.begin(), solvers.end());
  util::Table table(header);

  for (const auto& family : api::instance_families()) {
    table.row().add(family);
    std::vector<double> ratio(solvers.size(), 0.0);
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
         ++seed) {
      api::SolveOptions options;
      options.seed = seed;
      // Demo-table budget: the MILP would otherwise spend its full default
      // 30 s per cell proving the last percent of the gap.
      options.time_limit_seconds = 5.0;
      const model::Instance instance =
          api::make_instance(family, n, m, options);
      const double lower = model::combined_lower_bound(instance);
      for (std::size_t s = 0; s < solvers.size(); ++s) {
        const auto result = api::solve(solvers[s], instance, options);
        ratio[s] += result.makespan / lower;
      }
    }
    for (const double sum : ratio) table.add(sum / seeds, 4);
  }
  table.write_aligned(std::cout);
  std::cout << "\nall values are makespan / combined-lower-bound, averaged "
               "over seeds.\nexact runs only when n <= 20, milp when "
               "n*m <= 150.\n";
  return 0;
}
