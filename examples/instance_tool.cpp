// instance_tool — command-line front end for the library.
//
//   $ ./instance_tool gen <family> <n> <m> <seed> <out.instance>
//   $ ./instance_tool solve <in.instance> <eps> [solver] [out.schedule]
//                     [--json] [--deadline <s>] [--progress] [--cache-stats]
//                     [--threads <n>] [--connect <host:port>] [--portfolio]
//   $ ./instance_tool delta <in.instance> <eps> <delta.json>...
//                     [--json] [--regret <r>] [--connect <host:port>]
//                     [--keep-open]
//   $ ./instance_tool check <in.instance> <in.schedule>
//   $ ./instance_tool info <in.instance>
//   $ ./instance_tool solvers
//   $ ./instance_tool metrics <host:port> [--recovery]
//   $ ./instance_tool jsoncheck <file.json>
//
// Covers the full user workflow through the unified API: generate a
// workload, schedule it asynchronously through the SchedulingService with
// any registered solver (or the whole portfolio via --portfolio), stream
// progress, enforce a deadline, emit machine-readable JSON, replay instance
// deltas through an online ScheduleSession (`delta`), validate any schedule
// against an instance, and inspect bounds. With --connect the solve or
// session runs on a remote sched_server over the NDJSON wire protocol
// instead of in-process, and `metrics` scrapes a server's Prometheus
// endpoint (`--recovery` narrows it to the durability/session-resume
// counter families).
//
// Each subcommand is its own handler behind a dispatch table; legacy
// spellings (`portfolio`) remain as deprecation shims that warn on stderr
// and forward to the canonical subcommand.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.h"
#include "api/serialize.h"
#include "model/delta.h"
#include "model/io.h"
#include "net/client.h"
#include "online/session.h"
#include "util/json.h"

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  instance_tool gen <family> <n> <m> <seed> <out.instance>\n"
      "  instance_tool solve <in.instance> <eps> [solver] [out.schedule]\n"
      "                [--json] [--deadline <s>] [--progress]\n"
      "                [--cache-stats] [--threads <n>]\n"
      "                [--connect <host:port>] [--portfolio]\n"
      "  instance_tool delta <in.instance> <eps> <delta.json>...\n"
      "                [--json] [--regret <r>] [--connect <host:port>]\n"
      "                [--keep-open]\n"
      "  instance_tool check <in.instance> <in.schedule>\n"
      "  instance_tool info <in.instance>\n"
      "  instance_tool solvers\n"
      "  instance_tool metrics <host:port> [--recovery]\n"
      "  instance_tool jsoncheck <file.json>\n"
      "families:";
  for (const auto& family : bagsched::api::instance_families()) {
    std::cerr << " " << family;
  }
  std::cerr << "\nsolvers:";
  for (const auto& name : bagsched::api::SolverRegistry::global().names()) {
    std::cerr << " " << name;
  }
  std::cerr << "\n";
  return 2;
}

/// Flags shared by the solving subcommands; stripped from argv before the
/// positional arguments are counted.
struct Flags {
  bool json = false;
  bool progress = false;
  bool portfolio = false;    ///< race the whole portfolio (no single solver)
  bool cache_stats = false;  ///< solve with cache_mode=read-write twice and
                             ///< report the cache/dedup counters
  double deadline_seconds = -1.0;  ///< < 0 = no deadline
  double regret = -1.0;  ///< session regret bound; < 0 = library default
  int threads = 0;  ///< SolveOptions::num_threads (0 = hardware)
  bool keep_open = false;  ///< delta --connect: skip the clean
                           ///< session_close, leaving the server to orphan
                           ///< the session on disconnect (smoke tests use
                           ///< this to exercise linger + crash recovery)
  std::string connect;  ///< non-empty: solve on a remote sched_server
};

Flags extract_flags(std::vector<std::string>& args) {
  Flags flags;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      flags.json = true;
    } else if (args[i] == "--progress") {
      flags.progress = true;
    } else if (args[i] == "--portfolio") {
      flags.portfolio = true;
    } else if (args[i] == "--cache-stats") {
      flags.cache_stats = true;
    } else if (args[i] == "--keep-open") {
      flags.keep_open = true;
    } else if (args[i] == "--deadline" && i + 1 < args.size()) {
      flags.deadline_seconds = std::stod(args[++i]);
    } else if (args[i] == "--regret" && i + 1 < args.size()) {
      flags.regret = std::stod(args[++i]);
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      flags.threads = std::stoi(args[++i]);
    } else if (args[i] == "--connect" && i + 1 < args.size()) {
      flags.connect = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  args = std::move(positional);
  return flags;
}

void print_result(const bagsched::api::SolveResult& result) {
  std::cout << result.solver << ": " << bagsched::api::to_string(result.status)
            << ", makespan " << result.makespan << " (lower bound "
            << result.lower_bound << ", gap "
            << 100.0 * result.optimality_gap << "%, "
            << result.wall_seconds << " s)\n";
}

bagsched::api::ProgressFn progress_printer() {
  return [](const bagsched::api::ProgressEvent& event) {
    std::cerr << "[" << event.elapsed_seconds << "s] #" << event.request_id
              << " " << bagsched::api::to_string(event.kind);
    if (!event.solver.empty()) std::cerr << " " << event.solver;
    if (event.kind == bagsched::api::ProgressKind::Incumbent) {
      std::cerr << " makespan " << event.incumbent_makespan;
    }
    if (event.kind == bagsched::api::ProgressKind::Phase) {
      std::cerr << " phase=" << event.phase;
    }
    std::cerr << "\n";
  };
}

/// Remote mode (--connect): the same request goes to a sched_server over
/// the NDJSON wire protocol; progress frames stream back through the usual
/// printer. A wall-clock deadline cannot cross the wire, so --deadline
/// maps onto options.time_limit_seconds, enforced server-side. With
/// --cache-stats the request is replayed and the server's stats frame is
/// reported instead of in-process counters.
bagsched::api::SolveResult run_remote(bagsched::api::SolveRequest request,
                                      const Flags& flags) {
  namespace api = bagsched::api;
  if (flags.deadline_seconds >= 0.0) {
    request.options.time_limit_seconds = flags.deadline_seconds;
  }
  if (flags.cache_stats) {
    request.options.cache_mode = api::CacheMode::ReadWrite;
  }
  auto client = bagsched::net::Client::connect(flags.connect);
  const api::ProgressFn printer =
      flags.progress ? progress_printer() : api::ProgressFn{};
  api::SolveResult result =
      client.solve(request, "1", flags.progress, printer);
  if (flags.cache_stats) {
    const auto replayed = client.solve(request, "2");
    const auto stats = client.stats();
    const bagsched::util::Json& service = stats.at("service");
    std::cerr << "server: " << service.at("cache_hits").as_int()
              << " cache hits ("
              << service.at("cache_rounded_hits").as_int() << " rounded), "
              << service.at("dedup_shared").as_int()
              << " single-flight shared\n"
              << "replay "
              << (api::stat_bool(replayed.stats, "cache_hit")
                      ? "hit the cache"
                      : "MISSED the cache")
              << "\n";
  }
  return result;
}

/// Submits one request and waits — the async workflow in its smallest form.
/// With --cache-stats, the request runs with cache_mode=read-write and is
/// submitted twice (solve, then replay): the second pass must come back as
/// a cache hit, and the cache/dedup counters are reported on stderr.
bagsched::api::SolveResult run_via_service(bagsched::api::SolveRequest request,
                                           const Flags& flags) {
  if (!flags.connect.empty()) return run_remote(std::move(request), flags);
  if (flags.deadline_seconds >= 0.0) {
    request.deadline = bagsched::api::deadline_in(flags.deadline_seconds);
  }
  if (flags.progress) request.on_progress = progress_printer();
  if (flags.cache_stats) {
    request.options.cache_mode = bagsched::api::CacheMode::ReadWrite;
  }
  // One request, one slot: no point spawning hardware_concurrency workers
  // (the portfolio path parallelises inside its own nested service).
  bagsched::api::SchedulingService service(
      {.num_threads = 1, .max_concurrent = 1});
  bagsched::api::SolveRequest replay = request;
  auto handle = service.submit(std::move(request));
  bagsched::api::SolveResult result = handle.wait();
  if (flags.cache_stats) {
    // The replay only probes the cache; the reported result stays the
    // first solve's (a replay can differ, e.g. under an expired
    // --deadline).
    const auto replayed = service.submit(std::move(replay)).wait();
    const auto service_stats = service.stats();
    const auto cache_stats = service.cache_stats();
    std::cerr << "cache: " << cache_stats.entries << " entries, "
              << cache_stats.bytes << " bytes, " << cache_stats.hits
              << " hits / " << cache_stats.misses << " misses, "
              << cache_stats.evictions << " evicted\n"
              << "service: " << service_stats.cache_hits << " cache hits ("
              << service_stats.cache_rounded_hits << " rounded), "
              << service_stats.dedup_shared << " single-flight shared\n"
              << "replay "
              << (bagsched::api::stat_bool(replayed.stats, "cache_hit")
                      ? "hit the cache"
                      : "MISSED the cache")
              << "\n";
  }
  return result;
}

// --- Subcommand handlers ---------------------------------------------------

int cmd_gen(std::vector<std::string>& args) {
  using namespace bagsched;
  if (args.size() != 5) return usage();
  api::SolveOptions options;
  options.seed = std::stoull(args[3]);
  const auto instance = api::make_instance(
      args[0], std::stoi(args[1]), std::stoi(args[2]), options);
  model::save_instance(args[4], instance);
  std::cout << "wrote " << args[4] << ": " << model::describe(instance)
            << "\n";
  return 0;
}

int cmd_solve(std::vector<std::string>& args) {
  using namespace bagsched;
  const Flags flags = extract_flags(args);
  const bool single = !flags.portfolio;
  if (args.size() < 2 || args.size() > (single ? 4u : 2u)) {
    return usage();
  }
  const auto instance = model::load_instance(args[0]);
  api::SolveOptions options;
  options.eps = std::stod(args[1]);
  options.num_threads = flags.threads;
  std::vector<std::string> solvers;
  if (single) {
    solvers.push_back(args.size() >= 3 ? args[2] : "eptas");
  }
  const auto result = run_via_service(
      api::make_request(instance, options, solvers), flags);
  if (flags.progress && result.solver == "eptas") {
    // Per-guess probe lines already streamed as Phase events; close
    // with the search's aggregate probe telemetry.
    std::cerr << "guess search: "
              << api::stat_int(result.stats, "guesses")
              << " consumed, "
              << api::stat_int(result.stats, "probes_launched")
              << " launched, "
              << api::stat_int(result.stats, "probes_cancelled")
              << " cancelled, "
              << api::stat_int(result.stats, "probes_memo_hits")
              << " memo hits, "
              << api::stat_int(result.stats, "columns_warm_started")
              << " warm columns ("
              << api::stat_int(result.stats, "pricing_rounds_saved")
              << " pricing rounds saved), "
              << api::stat_int(result.stats, "threads")
              << " threads\n";
  }
  if (single && args.size() == 4 && result.schedule.num_jobs() > 0) {
    std::ofstream out(args[3]);
    model::write_schedule(out, result.schedule);
    if (!flags.json) std::cout << "wrote " << args[3] << "\n";
  }
  if (flags.json) {
    std::cout << api::to_json(result).dump(2) << "\n";
    return result.ok() || result.schedule_feasible ? 0 : 1;
  }
  if (!result.ok() && !result.schedule_feasible) {
    std::cerr << "error: "
              << (result.error.empty()
                      ? std::string(api::to_string(result.status))
                      : result.error)
              << "\n";
    return 1;
  }
  if (!single) {
    // Per-member lines, recovered from the service's telemetry.
    const std::string runs_json =
        api::stat_str(result.stats, "portfolio_runs_json");
    if (!runs_json.empty()) {
      const util::Json runs = util::Json::parse(runs_json);
      for (const auto& run_json : runs.as_array()) {
        print_result(api::solve_result_from_json(run_json));
      }
    }
    std::cout << "winner: " << result.solver << " at " << result.makespan
              << " (" << api::stat_int(result.stats,
                                       "portfolio_cancelled")
              << " cancelled)\n";
    return 0;
  }
  print_result(result);
  return result.schedule_feasible ? 0 : 1;
}

bagsched::model::Delta load_delta(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return bagsched::api::delta_from_json(
      bagsched::util::Json::parse(buffer.str()));
}

void print_delta_result(std::size_t step,
                        const bagsched::api::SolveResult& result) {
  namespace api = bagsched::api;
  std::cout << "delta " << step << ": "
            << api::stat_str(result.stats, "online.path", "?") << ", "
            << api::to_string(result.status) << ", makespan "
            << result.makespan << " (lower bound " << result.lower_bound
            << "), moved " << result.moved_jobs << " jobs ("
            << 100.0 * result.migration_ratio << "% of survivors)\n";
}

/// `delta` — replay instance deltas through an online ScheduleSession:
/// open a session on the instance (fresh portfolio solve), apply each
/// delta JSON file in order, and report the repair path, makespan and
/// migration cost per step. With --connect, the session lives on a remote
/// sched_server and the deltas travel as v2 wire frames.
int cmd_delta(std::vector<std::string>& args) {
  using namespace bagsched;
  const Flags flags = extract_flags(args);
  if (args.size() < 3) return usage();
  const auto instance = model::load_instance(args[0]);
  api::SolveOptions options;
  options.eps = std::stod(args[1]);
  options.num_threads = flags.threads;
  std::vector<std::string> delta_files(args.begin() + 2, args.end());

  util::Json report = util::Json::array();
  bool all_ok = true;
  if (!flags.connect.empty()) {
    auto client = net::Client::connect(flags.connect);
    const auto session = client.open_session(
        api::make_request(instance, options), "open", flags.regret);
    if (!flags.json) {
      std::cout << "session " << session.id << ": initial makespan "
                << session.initial.makespan << "\n";
    }
    std::size_t step = 0;
    for (const auto& file : delta_files) {
      const auto result = client.delta(session.id, load_delta(file),
                                       "d" + std::to_string(step));
      all_ok = all_ok && result.ok();
      if (flags.json) {
        report.push_back(api::to_json(result, /*include_schedule=*/false));
      } else {
        print_delta_result(step, result);
      }
      ++step;
    }
    if (flags.keep_open) {
      // Deliberately drop the connection without session_close: the
      // server parks the session in its linger window, and (with a
      // journal) it survives a crash for resume_session to reclaim.
      if (!flags.json) {
        std::cout << "session " << session.id << " epoch " << session.epoch
                  << " left open\n";
      }
    } else {
      client.close_session(session.id);
    }
  } else {
    online::SessionOptions tuning;
    tuning.solve = options;
    if (flags.regret >= 0.0) tuning.regret_bound = flags.regret;
    online::ScheduleSession session(instance, tuning);
    if (!flags.json) {
      std::cout << "session: initial makespan " << session.makespan()
                << " (lower bound " << session.lower_bound() << ")\n";
    }
    std::size_t step = 0;
    for (const auto& file : delta_files) {
      const auto result = session.apply(load_delta(file));
      all_ok = all_ok && result.ok();
      if (flags.json) {
        report.push_back(api::to_json(result, /*include_schedule=*/false));
      } else {
        print_delta_result(step, result);
      }
      ++step;
    }
  }
  if (flags.json) std::cout << report.dump(2) << "\n";
  return all_ok ? 0 : 1;
}

int cmd_check(std::vector<std::string>& args) {
  using namespace bagsched;
  if (args.size() != 2) return usage();
  const auto instance = model::load_instance(args[0]);
  std::ifstream in(args[1]);
  const auto schedule = model::read_schedule(in);
  const auto validation = model::validate(instance, schedule);
  if (validation.ok()) {
    std::cout << "valid, makespan " << schedule.makespan(instance) << "\n";
    return 0;
  }
  std::cout << "INVALID: " << validation.message << " ("
            << validation.unassigned_jobs << " unassigned, "
            << validation.bag_conflicts << " bag conflicts)\n";
  return 1;
}

int cmd_info(std::vector<std::string>& args) {
  using namespace bagsched;
  if (args.size() != 1) return usage();
  const auto instance = model::load_instance(args[0]);
  std::cout << model::describe(instance) << "\n"
            << "area bound    " << model::area_lower_bound(instance)
            << "\npmax bound    " << model::pmax_lower_bound(instance)
            << "\npairing bound "
            << model::pairing_lower_bound(instance) << "\ncombined      "
            << model::combined_lower_bound(instance) << "\nfeasible      "
            << (instance.is_feasible() ? "yes" : "no") << "\n";
  return 0;
}

int cmd_solvers(std::vector<std::string>& args) {
  using namespace bagsched;
  if (!args.empty()) return usage();
  for (const auto* solver : api::SolverRegistry::global().all()) {
    const auto& info = solver->info();
    std::cout << info.name << "\t" << api::to_string(info.guarantee)
              << "\t" << info.guarantee_text << "\t(" << info.typical_scale
              << ")\t" << info.summary << "\n";
  }
  return 0;
}

int cmd_metrics(std::vector<std::string>& args) {
  using namespace bagsched;
  bool recovery_only = false;
  if (!args.empty() && args.back() == "--recovery") {
    recovery_only = true;
    args.pop_back();
  }
  if (args.size() != 1) return usage();
  const auto [host, port] = net::parse_hostport(args[0]);
  const std::string body = net::fetch_metrics(host, port);
  if (!recovery_only) {
    std::cout << body;
    return 0;
  }
  // The durability story at a glance: the journal family plus the
  // session-lifecycle counters resume/orphan/recovery gating adds. A
  // server running without --journal-dir has no bagsched_journal_*
  // series, so operators can tell "journaling off" from "journaling
  // idle" by the families present.
  const char* const kPrefixes[] = {
      "bagsched_journal_",
      "bagsched_server_session_resumes",
      "bagsched_server_resume_rejects",
      "bagsched_server_sessions_orphaned",
      "bagsched_server_orphans_expired",
      "bagsched_server_recovering_rejects",
      "bagsched_server_sessions_recovered",
  };
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    for (const char* prefix : kPrefixes) {
      if (line.rfind(prefix, 0) == 0) {
        std::cout << line << "\n";
        break;
      }
    }
  }
  return 0;
}

int cmd_jsoncheck(std::vector<std::string>& args) {
  // Strict-parse a JSON document (e.g. a BENCH_*.json emitted by the
  // bench harness) through util::Json; CI uses this to make sure the
  // perf tooling's output cannot silently rot.
  if (args.size() != 1) return usage();
  std::ifstream in(args[0]);
  if (!in) {
    std::cerr << "jsoncheck: cannot open " << args[0] << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = bagsched::util::Json::parse(buffer.str());
  std::cout << args[0] << ": valid JSON ("
            << (parsed.is_object() ? "object" : "non-object")
            << ", " << buffer.str().size() << " bytes)\n";
  return 0;
}

struct Command {
  const char* name;
  int (*run)(std::vector<std::string>&);
};

constexpr Command kCommands[] = {
    {"gen", cmd_gen},         {"solve", cmd_solve},
    {"delta", cmd_delta},     {"check", cmd_check},
    {"info", cmd_info},       {"solvers", cmd_solvers},
    {"metrics", cmd_metrics}, {"jsoncheck", cmd_jsoncheck},
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  // Deprecation shims: legacy spellings forward to the canonical
  // subcommand with a one-line warning; scripts keep working.
  if (command == "portfolio") {
    std::cerr << "instance_tool: `portfolio` is deprecated; "
                 "use `solve --portfolio`\n";
    command = "solve";
    args.push_back("--portfolio");
  }
  try {
    for (const Command& entry : kCommands) {
      if (command == entry.name) return entry.run(args);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
