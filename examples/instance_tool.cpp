// instance_tool — command-line front end for the library.
//
//   $ ./instance_tool gen <family> <n> <m> <seed> <out.instance>
//   $ ./instance_tool solve <in.instance> <eps> [out.schedule]
//   $ ./instance_tool check <in.instance> <in.schedule>
//   $ ./instance_tool info <in.instance>
//
// Covers the full user workflow: generate a workload, schedule it with the
// EPTAS, validate any schedule against an instance, and inspect bounds.
#include <fstream>
#include <iostream>
#include <string>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/io.h"
#include "model/lower_bounds.h"

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  instance_tool gen <family> <n> <m> <seed> <out.instance>\n"
      "  instance_tool solve <in.instance> <eps> [out.schedule]\n"
      "  instance_tool check <in.instance> <in.schedule>\n"
      "  instance_tool info <in.instance>\n"
      "families:";
  for (const auto& family : bagsched::gen::family_names()) {
    std::cerr << " " << family;
  }
  std::cerr << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bagsched;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen" && argc == 7) {
      const auto instance =
          gen::by_name(argv[2], std::stoi(argv[3]), std::stoi(argv[4]),
                       std::stoull(argv[5]));
      model::save_instance(argv[6], instance);
      std::cout << "wrote " << argv[6] << ": " << model::describe(instance)
                << "\n";
      return 0;
    }
    if (command == "solve" && (argc == 4 || argc == 5)) {
      const auto instance = model::load_instance(argv[2]);
      const double eps = std::stod(argv[3]);
      const auto result = eptas::eptas_schedule(instance, eps);
      model::require_valid(instance, result.schedule, "instance_tool");
      std::cout << "makespan " << result.makespan << " (lower bound "
                << model::combined_lower_bound(instance) << ", "
                << result.stats.guesses_tried << " guesses, "
                << (result.stats.used_fallback ? "heuristic" : "pipeline")
                << " result)\n";
      if (argc == 5) {
        std::ofstream out(argv[4]);
        model::write_schedule(out, result.schedule);
        std::cout << "wrote " << argv[4] << "\n";
      }
      return 0;
    }
    if (command == "check" && argc == 4) {
      const auto instance = model::load_instance(argv[2]);
      std::ifstream in(argv[3]);
      const auto schedule = model::read_schedule(in);
      const auto validation = model::validate(instance, schedule);
      if (validation.ok()) {
        std::cout << "valid, makespan " << schedule.makespan(instance)
                  << "\n";
        return 0;
      }
      std::cout << "INVALID: " << validation.message << " ("
                << validation.unassigned_jobs << " unassigned, "
                << validation.bag_conflicts << " bag conflicts)\n";
      return 1;
    }
    if (command == "info" && argc == 3) {
      const auto instance = model::load_instance(argv[2]);
      std::cout << model::describe(instance) << "\n"
                << "area bound    " << model::area_lower_bound(instance)
                << "\npmax bound    " << model::pmax_lower_bound(instance)
                << "\npairing bound "
                << model::pairing_lower_bound(instance) << "\ncombined      "
                << model::combined_lower_bound(instance) << "\nfeasible      "
                << (instance.is_feasible() ? "yes" : "no") << "\n";
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
