// instance_tool — command-line front end for the library.
//
//   $ ./instance_tool gen <family> <n> <m> <seed> <out.instance>
//   $ ./instance_tool solve <in.instance> <eps> [solver] [out.schedule]
//   $ ./instance_tool portfolio <in.instance> <eps>
//   $ ./instance_tool check <in.instance> <in.schedule>
//   $ ./instance_tool info <in.instance>
//   $ ./instance_tool solvers
//
// Covers the full user workflow through the unified API: generate a
// workload, schedule it with any registered solver (or a portfolio of
// them), validate any schedule against an instance, and inspect bounds.
#include <fstream>
#include <iostream>
#include <string>

#include "api/api.h"
#include "model/io.h"

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  instance_tool gen <family> <n> <m> <seed> <out.instance>\n"
      "  instance_tool solve <in.instance> <eps> [solver] [out.schedule]\n"
      "  instance_tool portfolio <in.instance> <eps>\n"
      "  instance_tool check <in.instance> <in.schedule>\n"
      "  instance_tool info <in.instance>\n"
      "  instance_tool solvers\n"
      "families:";
  for (const auto& family : bagsched::api::instance_families()) {
    std::cerr << " " << family;
  }
  std::cerr << "\nsolvers:";
  for (const auto& name : bagsched::api::SolverRegistry::global().names()) {
    std::cerr << " " << name;
  }
  std::cerr << "\n";
  return 2;
}

void print_result(const bagsched::api::SolveResult& result) {
  std::cout << result.solver << ": " << bagsched::api::to_string(result.status)
            << ", makespan " << result.makespan << " (lower bound "
            << result.lower_bound << ", gap "
            << 100.0 * result.optimality_gap << "%, "
            << result.wall_seconds << " s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bagsched;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen" && argc == 7) {
      api::SolveOptions options;
      options.seed = std::stoull(argv[5]);
      const auto instance = api::make_instance(
          argv[2], std::stoi(argv[3]), std::stoi(argv[4]), options);
      model::save_instance(argv[6], instance);
      std::cout << "wrote " << argv[6] << ": " << model::describe(instance)
                << "\n";
      return 0;
    }
    if (command == "solve" && argc >= 4 && argc <= 6) {
      const auto instance = model::load_instance(argv[2]);
      api::SolveOptions options;
      options.eps = std::stod(argv[3]);
      const std::string solver = argc >= 5 ? argv[4] : "eptas";
      const auto result = api::solve(solver, instance, options);
      if (!result.ok()) {
        std::cerr << "error: " << result.error << "\n";
        return 1;
      }
      print_result(result);
      if (argc == 6) {
        std::ofstream out(argv[5]);
        model::write_schedule(out, result.schedule);
        std::cout << "wrote " << argv[5] << "\n";
      }
      return result.schedule_feasible ? 0 : 1;
    }
    if (command == "portfolio" && argc == 4) {
      const auto instance = model::load_instance(argv[2]);
      api::SolveOptions options;
      options.eps = std::stod(argv[3]);
      const auto race = api::Portfolio().solve(instance, options);
      for (const auto& run : race.runs) print_result(run);
      if (!race.ok()) {
        std::cerr << "error: " << race.best.error << "\n";
        return 1;
      }
      std::cout << "winner: " << race.best.solver << " at "
                << race.best.makespan << " (" << race.cancelled_count
                << " cancelled)\n";
      return 0;
    }
    if (command == "check" && argc == 4) {
      const auto instance = model::load_instance(argv[2]);
      std::ifstream in(argv[3]);
      const auto schedule = model::read_schedule(in);
      const auto validation = model::validate(instance, schedule);
      if (validation.ok()) {
        std::cout << "valid, makespan " << schedule.makespan(instance)
                  << "\n";
        return 0;
      }
      std::cout << "INVALID: " << validation.message << " ("
                << validation.unassigned_jobs << " unassigned, "
                << validation.bag_conflicts << " bag conflicts)\n";
      return 1;
    }
    if (command == "info" && argc == 3) {
      const auto instance = model::load_instance(argv[2]);
      std::cout << model::describe(instance) << "\n"
                << "area bound    " << model::area_lower_bound(instance)
                << "\npmax bound    " << model::pmax_lower_bound(instance)
                << "\npairing bound "
                << model::pairing_lower_bound(instance) << "\ncombined      "
                << model::combined_lower_bound(instance) << "\nfeasible      "
                << (instance.is_feasible() ? "yes" : "no") << "\n";
      return 0;
    }
    if (command == "solvers" && argc == 2) {
      for (const auto* solver : api::SolverRegistry::global().all()) {
        const auto& info = solver->info();
        std::cout << info.name << "\t" << api::to_string(info.guarantee)
                  << "\t" << info.guarantee_text << "\t(" << info.typical_scale
                  << ")\t" << info.summary << "\n";
      }
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
