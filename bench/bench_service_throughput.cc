// Service throughput: requests/sec through the SchedulingService queue at
// varying queue depths (batch sizes) and thread counts.
//
// The workload is a fast solver (greedy-bags) over small instances, so the
// table measures the service overhead — queueing, dispatch, handle
// resolution, progress plumbing — rather than solver time. The `sat`
// column (solver-seconds per wall-second) shows how well the bounded pool
// stays busy: ideal is the thread count.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "api/api.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace {

namespace api = bagsched::api;
namespace gen = bagsched::gen;

/// One shared workload per depth: `depth` small uniform instances.
std::vector<std::shared_ptr<const bagsched::model::Instance>> make_workload(
    int depth, int num_jobs) {
  std::vector<std::shared_ptr<const bagsched::model::Instance>> instances;
  instances.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    instances.push_back(std::make_shared<const bagsched::model::Instance>(
        gen::by_name("uniform", num_jobs, 8,
                     static_cast<std::uint64_t>(i + 1))));
  }
  return instances;
}

/// Submits the whole workload as one batch and waits for every handle;
/// returns (wall seconds, summed solver wall seconds).
std::pair<double, double> run_batch(
    api::SchedulingService& service,
    const std::vector<std::shared_ptr<const bagsched::model::Instance>>&
        instances,
    const char* solver) {
  std::vector<api::SolveRequest> requests;
  requests.reserve(instances.size());
  for (const auto& instance : instances) {
    requests.push_back(api::make_request(instance, {}, {solver}));
  }
  bagsched::util::Stopwatch timer;
  auto handles = service.submit_batch(std::move(requests));
  double solver_seconds = 0.0;
  for (auto& handle : handles) {
    solver_seconds += handle.wait().wall_seconds;
  }
  return {timer.seconds(), solver_seconds};
}

void print_throughput_table() {
  bagsched::util::Table table({"threads", "depth", "jobs", "reqs_per_s",
                               "mean_ms", "sat"});
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const int depth : {8, 32, 128}) {
      api::SchedulingService service(
          {.num_threads = threads, .max_concurrent = threads});
      const int num_jobs = 120;
      const auto instances = make_workload(depth, num_jobs);
      // Warm-up pass populates allocator caches; measured pass follows.
      run_batch(service, instances, "greedy-bags");
      const auto [wall, solver_seconds] =
          run_batch(service, instances, "greedy-bags");
      table.row()
          .add(static_cast<long long>(threads))
          .add(depth)
          .add(num_jobs)
          .add(depth / wall, 1)
          .add(1e3 * wall / depth, 3)
          .add(solver_seconds / wall, 2);
    }
  }
  std::cout << "\n=== service throughput: requests/sec by queue depth and "
               "thread count ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: with a ~20us solver the queue dominates, so "
               "mean_ms is the per-request service overhead (tens of us) "
               "and reqs_per_s stays in the tens of thousands across "
               "depths and thread counts\n\n";
}

/// Microbenchmark: one submit+wait round trip through the service (queue,
/// dispatch, solve, resolve) at a given thread count.
void BM_ServiceSubmitWait(benchmark::State& state) {
  api::SchedulingService service(
      {.num_threads = static_cast<std::size_t>(state.range(0))});
  const auto instance = std::make_shared<const bagsched::model::Instance>(
      gen::by_name("uniform", 60, 8, 1));
  for (auto _ : state) {
    auto handle =
        service.submit(api::make_request(instance, {}, {"greedy-bags"}));
    benchmark::DoNotOptimize(handle.wait().makespan);
  }
}
BENCHMARK(BM_ServiceSubmitWait)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// Microbenchmark: batched fan-out of `depth` requests over 4 threads.
void BM_ServiceBatch(benchmark::State& state) {
  api::SchedulingService service({.num_threads = 4});
  const auto instances =
      make_workload(static_cast<int>(state.range(0)), 60);
  for (auto _ : state) {
    const auto [wall, solver_seconds] =
        run_batch(service, instances, "greedy-bags");
    benchmark::DoNotOptimize(wall + solver_seconds);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ServiceBatch)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_throughput_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
