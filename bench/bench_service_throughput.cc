// Service throughput: requests/sec through the SchedulingService queue at
// varying queue depths (batch sizes) and thread counts, plus the
// regression-tracked solve-cache benchmark (BENCH_service.json).
//
// The overhead table uses a fast solver (greedy-bags) over small
// instances, so it measures the service itself — queueing, dispatch,
// handle resolution, progress plumbing. The `sat` column (solver-seconds
// per wall-second) shows how well the bounded pool stays busy: ideal is
// the thread count.
//
// The harness-tracked cache cases replay a duplicate-heavy request stream
// (50% exact duplicates, plus uniformly rescaled near-duplicates that
// only the eps-rounded fingerprint catches) with the cache off and on;
// the `speedup` metric is the acceptance gate for the canonicalizing
// cache (>= 2x reqs/sec with 50% duplicates).
//
// Flags: --bench-json[=path] --bench-reps=N (see harness.h).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "api/api.h"
#include "harness.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace {

namespace api = bagsched::api;
namespace bench = bagsched::bench;
namespace gen = bagsched::gen;

/// One shared workload per depth: `depth` small uniform instances.
std::vector<std::shared_ptr<const bagsched::model::Instance>> make_workload(
    int depth, int num_jobs) {
  std::vector<std::shared_ptr<const bagsched::model::Instance>> instances;
  instances.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    instances.push_back(std::make_shared<const bagsched::model::Instance>(
        gen::by_name("uniform", num_jobs, 8,
                     static_cast<std::uint64_t>(i + 1))));
  }
  return instances;
}

/// Submits the whole workload as one batch and waits for every handle;
/// returns (wall seconds, summed solver wall seconds).
std::pair<double, double> run_batch(
    api::SchedulingService& service,
    const std::vector<std::shared_ptr<const bagsched::model::Instance>>&
        instances,
    const char* solver) {
  std::vector<api::SolveRequest> requests;
  requests.reserve(instances.size());
  for (const auto& instance : instances) {
    requests.push_back(api::make_request(instance, {}, {solver}));
  }
  bagsched::util::Stopwatch timer;
  auto handles = service.submit_batch(std::move(requests));
  double solver_seconds = 0.0;
  for (auto& handle : handles) {
    solver_seconds += handle.wait().wall_seconds;
  }
  return {timer.seconds(), solver_seconds};
}

void print_throughput_table() {
  bagsched::util::Table table({"threads", "depth", "jobs", "reqs_per_s",
                               "mean_ms", "sat"});
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const int depth : {8, 32, 128}) {
      api::SchedulingService service(
          {.num_threads = threads, .max_concurrent = threads});
      const int num_jobs = 120;
      const auto instances = make_workload(depth, num_jobs);
      // Warm-up pass populates allocator caches; measured pass follows.
      run_batch(service, instances, "greedy-bags");
      const auto [wall, solver_seconds] =
          run_batch(service, instances, "greedy-bags");
      table.row()
          .add(static_cast<long long>(threads))
          .add(depth)
          .add(num_jobs)
          .add(depth / wall, 1)
          .add(1e3 * wall / depth, 3)
          .add(solver_seconds / wall, 2);
    }
  }
  std::cout << "\n=== service throughput: requests/sec by queue depth and "
               "thread count ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: with a ~20us solver the queue dominates, so "
               "mean_ms is the per-request service overhead (tens of us) "
               "and reqs_per_s stays in the tens of thousands across "
               "depths and thread counts\n\n";
}

// --- Canonicalizing-cache throughput (harness-tracked) ----------------------

/// `factor`-rescaled copy of an instance: a near-duplicate that collides
/// with the original under the eps-rounded fingerprint but not the exact
/// one (every lower bound scales with the sizes, so the rounded grid
/// indices are unchanged).
bagsched::model::Instance rescaled(const bagsched::model::Instance& instance,
                                   double factor) {
  std::vector<bagsched::model::Job> jobs;
  jobs.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const auto& job : instance.jobs()) {
    jobs.push_back({.id = 0, .size = job.size * factor, .bag = job.bag});
  }
  return bagsched::model::Instance(std::move(jobs), instance.num_machines(),
                                   instance.num_bags());
}

/// Duplicate-heavy stream over `bases` base instances: every base once,
/// one rescaled near-duplicate per base, and two exact duplicates per base
/// — so 50% of the 4*bases requests are exact duplicates. Shuffled
/// deterministically so duplicates interleave like real traffic.
std::vector<std::shared_ptr<const bagsched::model::Instance>>
make_duplicate_stream(int bases, int num_jobs) {
  std::vector<std::shared_ptr<const bagsched::model::Instance>> stream;
  stream.reserve(static_cast<std::size_t>(4 * bases));
  for (int i = 0; i < bases; ++i) {
    auto base = std::make_shared<const bagsched::model::Instance>(
        gen::by_name("uniform", num_jobs, 8,
                     static_cast<std::uint64_t>(1000 + i)));
    stream.push_back(base);
    stream.push_back(std::make_shared<const bagsched::model::Instance>(
        rescaled(*base, 1.1 + 0.01 * i)));
    stream.push_back(base);
    stream.push_back(base);
  }
  std::mt19937_64 rng(12345);
  std::shuffle(stream.begin(), stream.end(), rng);
  return stream;
}

struct CacheRunStats {
  double wall_seconds = 0.0;
  api::ServiceStats service;
  bagsched::cache::CacheStats cache;
};

/// One cold service, one batch of the whole stream, wait for every handle.
CacheRunStats run_duplicate_stream(
    const std::vector<std::shared_ptr<const bagsched::model::Instance>>&
        stream,
    api::CacheMode mode) {
  api::SchedulingService service({.num_threads = 2, .max_concurrent = 2});
  std::vector<api::SolveRequest> requests;
  requests.reserve(stream.size());
  for (const auto& instance : stream) {
    api::SolveOptions options;
    options.eps = 0.5;
    options.cache_mode = mode;
    requests.push_back(api::make_request(instance, options, {"eptas"}));
  }
  bagsched::util::Stopwatch timer;
  auto handles = service.submit_batch(std::move(requests));
  for (auto& handle : handles) handle.wait();
  CacheRunStats stats;
  stats.wall_seconds = timer.seconds();
  stats.service = service.stats();
  stats.cache = service.cache_stats();
  return stats;
}

/// The harness-tracked cache cases; returns the cache-on speedup.
void run_cache_cases(bench::Harness& harness, int reps) {
  const int bases = 24;
  const auto stream = make_duplicate_stream(bases, 100);
  const auto n = static_cast<double>(stream.size());

  CacheRunStats off;
  auto& off_case =
      harness.run_case("dup50/eptas/cache-off", reps,
                       [&] { off = run_duplicate_stream(
                                 stream, api::CacheMode::Off); });
  off_case.metrics.set("requests", static_cast<long long>(stream.size()));
  off_case.metrics.set("reqs_per_s", n / off.wall_seconds);
  // The case reference dies at the next run_case: keep the median.
  const double off_median = off_case.median_seconds;

  CacheRunStats on;
  auto& on_case =
      harness.run_case("dup50/eptas/cache-rw", reps,
                       [&] { on = run_duplicate_stream(
                                 stream, api::CacheMode::ReadWrite); });
  on_case.metrics.set("requests", static_cast<long long>(stream.size()));
  on_case.metrics.set("reqs_per_s", n / on.wall_seconds);
  on_case.metrics.set("cache_hits",
                      static_cast<long long>(on.service.cache_hits));
  on_case.metrics.set(
      "cache_rounded_hits",
      static_cast<long long>(on.service.cache_rounded_hits));
  on_case.metrics.set("dedup_shared",
                      static_cast<long long>(on.service.dedup_shared));
  on_case.metrics.set("cache_entries",
                      static_cast<long long>(on.cache.entries));
  const double speedup = off_median / on_case.median_seconds;
  on_case.metrics.set("speedup_vs_off", speedup);

  std::cout << "\n=== solve cache: duplicate-heavy stream ("
            << stream.size() << " requests, 50% exact duplicates) ===\n"
            << "cache off: " << n / off.wall_seconds << " reqs/s\n"
            << "cache on:  " << n / on.wall_seconds << " reqs/s ("
            << on.service.cache_hits << " hits, "
            << on.service.cache_rounded_hits << " rounded, "
            << on.service.dedup_shared << " single-flight shared)\n"
            << "speedup:   " << speedup << "x (acceptance: >= 2x)\n";
}

/// Microbenchmark: one submit+wait round trip through the service (queue,
/// dispatch, solve, resolve) at a given thread count.
void BM_ServiceSubmitWait(benchmark::State& state) {
  api::SchedulingService service(
      {.num_threads = static_cast<std::size_t>(state.range(0))});
  const auto instance = std::make_shared<const bagsched::model::Instance>(
      gen::by_name("uniform", 60, 8, 1));
  for (auto _ : state) {
    auto handle =
        service.submit(api::make_request(instance, {}, {"greedy-bags"}));
    benchmark::DoNotOptimize(handle.wait().makespan);
  }
}
BENCHMARK(BM_ServiceSubmitWait)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// Microbenchmark: batched fan-out of `depth` requests over 4 threads.
void BM_ServiceBatch(benchmark::State& state) {
  api::SchedulingService service({.num_threads = 4});
  const auto instances =
      make_workload(static_cast<int>(state.range(0)), 60);
  for (auto _ : state) {
    const auto [wall, solver_seconds] =
        run_batch(service, instances, "greedy-bags");
    benchmark::DoNotOptimize(wall + solver_seconds);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ServiceBatch)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("service", &argc, argv);
  print_throughput_table();
  run_cache_cases(harness, harness.reps(3));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return harness.finish(std::cout) ? 0 : 1;
}
