// E4 (Lemma 2 / Figure 2): the instance transformation splits non-priority
// bags and adds filler jobs. Lemma 2 bounds the loss: a makespan-C solution
// of I yields a makespan-(1+eps)C solution of I'. We measure the area
// inflation (the global version of that bound) and the structural effect
// (bags split, fillers added, mediums removed).
#include <benchmark/benchmark.h>

#include <iostream>

#include "eptas/classify.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "util/csv.h"

namespace {

namespace eptas = bagsched::eptas;
namespace gen = bagsched::gen;
using bagsched::model::Instance;

Instance scaled_to_guess(const Instance& instance, double guess) {
  std::vector<double> sizes;
  std::vector<bagsched::model::BagId> bags;
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  return Instance::from_vectors(sizes, bags, instance.num_machines());
}

void print_transform_table() {
  bagsched::util::Table table({"family", "eps", "n", "bags", "split_bags",
                               "fillers", "mediums_out", "area_ratio",
                               "bound(1+eps)"});
  for (const auto* family : {"mixed", "uniform", "twopoint", "smallbags"}) {
    for (const double eps : {0.5, 1.0 / 3.0}) {
      const Instance raw = gen::by_name(family, 80, 8, 3);
      const double guess =
          1.2 * bagsched::model::combined_lower_bound(raw);
      const Instance scaled = scaled_to_guess(raw, guess);
      const auto cls = eptas::classify(scaled, eps, eptas::EptasConfig{});
      if (!cls) continue;
      const auto transformed = eptas::transform(scaled, *cls);

      int split_bags = 0;
      for (std::size_t l = 0; l < transformed.is_large_part.size(); ++l) {
        if (transformed.is_large_part[l]) ++split_bags;
      }
      int fillers = 0;
      for (std::size_t j = 0; j < transformed.is_filler.size(); ++j) {
        if (transformed.is_filler[j]) ++fillers;
      }
      double original_area = 0.0;
      for (int j = 0; j < scaled.num_jobs(); ++j) {
        original_area += cls->size_of(j);
      }
      double new_area = transformed.instance.total_area();
      for (const auto medium : transformed.removed_medium) {
        new_area += cls->size_of(medium);
      }
      table.row()
          .add(family)
          .add(eps, 3)
          .add(raw.num_jobs())
          .add(raw.num_bags())
          .add(split_bags)
          .add(fillers)
          .add(static_cast<long long>(transformed.removed_medium.size()))
          .add(new_area / original_area, 4)
          .add(1.0 + eps, 3);
    }
  }
  std::cout << "\n=== E4 / Lemma 2, Figure 2: transformation loss ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: area_ratio <= bound for every family\n\n";
}

void BM_Transform(benchmark::State& state) {
  const Instance raw =
      gen::by_name("mixed", static_cast<int>(state.range(0)), 8, 3);
  const double guess = 1.2 * bagsched::model::combined_lower_bound(raw);
  const Instance scaled = scaled_to_guess(raw, guess);
  const auto cls = eptas::classify(scaled, 0.5, eptas::EptasConfig{});
  for (auto _ : state) {
    auto transformed = eptas::transform(scaled, *cls);
    benchmark::DoNotOptimize(transformed.instance.num_jobs());
  }
}
BENCHMARK(BM_Transform)->Arg(80)->Arg(320)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_transform_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
