// E5 (Lemma 3): removed medium jobs are re-inserted via a flow network;
// the lemma bounds the per-machine height increase by 2*eps (scaled units).
// We run the pipeline to the insertion step and measure the worst added
// medium load per machine against that bound.
#include <benchmark/benchmark.h>

#include <iostream>

#include "eptas/classify.h"
#include "eptas/milp_model.h"
#include "eptas/placement.h"
#include "eptas/small_jobs.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "util/csv.h"

namespace {

namespace eptas = bagsched::eptas;
namespace gen = bagsched::gen;
using bagsched::model::Instance;

struct Pipeline {
  Instance scaled;
  eptas::Classification cls;
  eptas::Transformed transformed;
  eptas::PlacementResult placement;
};

std::optional<Pipeline> run_pipeline(const Instance& raw, double eps,
                                     double guess_factor) {
  const double guess =
      guess_factor * bagsched::model::combined_lower_bound(raw);
  std::vector<double> sizes;
  std::vector<bagsched::model::BagId> bags;
  for (const auto& job : raw.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  Instance scaled =
      Instance::from_vectors(sizes, bags, raw.num_machines());
  const auto cls = eptas::classify(scaled, eps, eptas::EptasConfig{});
  if (!cls) return std::nullopt;
  auto transformed = eptas::transform(scaled, *cls);
  auto space = eptas::build_pattern_space(transformed, *cls);
  auto master =
      eptas::solve_master(space, transformed, *cls, eptas::EptasConfig{});
  if (!master) return std::nullopt;
  auto placement = eptas::place_ml_jobs(transformed, space, *master,
                                        eptas::EptasConfig{});
  if (!placement) return std::nullopt;
  eptas::SmallJobStats stats;
  if (!eptas::schedule_small_jobs(transformed, *cls, space, *master,
                                  *placement, eptas::EptasConfig{}, stats)) {
    return std::nullopt;
  }
  return Pipeline{std::move(scaled), *cls, std::move(transformed),
                  std::move(*placement)};
}

void print_medium_table() {
  bagsched::util::Table table({"seed", "eps", "mediums", "machines",
                               "max_added_height", "bound(2eps)",
                               "violations"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const double eps = 0.5;
    gen::MixedParams params;
    params.num_machines = 8;
    params.num_bags = 24;
    params.large_jobs = 8;
    params.medium_jobs = 32;  // medium-heavy on purpose
    params.small_jobs = 40;
    params.seed = seed;
    const Instance raw = gen::mixed(params);
    auto pipeline = run_pipeline(raw, eps, 1.3);
    if (!pipeline) continue;
    const auto mediums = eptas::insert_medium_jobs(
        pipeline->scaled, pipeline->transformed, pipeline->placement);
    if (!mediums) continue;
    std::vector<double> added(
        static_cast<std::size_t>(raw.num_machines()), 0.0);
    for (std::size_t i = 0; i < mediums->size(); ++i) {
      added[static_cast<std::size_t>((*mediums)[i])] +=
          pipeline->cls.size_of(pipeline->transformed.removed_medium[i]);
    }
    double worst = 0.0;
    int violations = 0;
    for (double a : added) {
      worst = std::max(worst, a);
      if (a > 2.0 * eps + 1e-9) ++violations;
    }
    table.row()
        .add(static_cast<long long>(seed))
        .add(eps, 3)
        .add(static_cast<long long>(mediums->size()))
        .add(raw.num_machines())
        .add(worst, 4)
        .add(2.0 * eps, 3)
        .add(violations);
  }
  std::cout << "\n=== E5 / Lemma 3: medium insertion height ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: max_added_height <= bound, violations = 0\n\n";
}

void BM_MediumInsertion(benchmark::State& state) {
  gen::MixedParams params;
  params.num_machines = 8;
  params.num_bags = 24;
  params.medium_jobs = static_cast<int>(state.range(0));
  params.large_jobs = 8;
  params.small_jobs = 40;
  params.seed = 1;
  const Instance raw = gen::mixed(params);
  auto pipeline = run_pipeline(raw, 0.5, 1.3);
  if (!pipeline) {
    state.SkipWithError("pipeline failed");
    return;
  }
  for (auto _ : state) {
    auto mediums = eptas::insert_medium_jobs(
        pipeline->scaled, pipeline->transformed, pipeline->placement);
    benchmark::DoNotOptimize(mediums);
  }
}
BENCHMARK(BM_MediumInsertion)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_medium_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
