// Online repair benchmark: replay seeded churn traces (gen::churn_trace)
// through online::ScheduleSession and compare against re-solving every
// post-delta instance from scratch with the same solver portfolio.
//
// Reported per trace:
//   * re-solves/sec sustained by the repair pipeline,
//   * repair-vs-fresh speedup (fresh median / repair median),
//   * mean migration ratio (moved jobs / survivors, per delta),
//   * the repair-path mix (noop/memo/repair/region/fresh).
//
// Contract checks: every committed schedule must sit within the session's
// regret bound ((1 + regret_bound) * combined lower bound) — enforced at
// any rep count, it is a correctness property — and, when the medians are
// trustworthy (reps >= 2, i.e. the perf-gate run, not the reps=1 CI
// smoke), the mean repair-vs-fresh speedup must be >= 5x and the mean
// migration ratio <= 0.25: the acceptance bars for the online axis.
//
// Flags: --bench-json[=path] --bench-reps=N (see harness.h).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "api/portfolio.h"
#include "gen/churn.h"
#include "harness.h"
#include "model/delta.h"
#include "model/lower_bounds.h"
#include "online/session.h"

namespace {

namespace bench = bagsched::bench;
namespace gen = bagsched::gen;
namespace model = bagsched::model;
namespace online = bagsched::online;

namespace api = bagsched::api;

constexpr double kMinSpeedup = 5.0;
constexpr double kMaxMigrationRatio = 0.25;

struct Spec {
  const char* label;
  gen::ChurnParams churn;
};

online::SessionOptions session_options() {
  online::SessionOptions options;
  // The scale-friendly half of the portfolio: the fresh baseline should be
  // what a latency-conscious cold request would actually run, not the
  // full EPTAS pipeline (which would flatter the speedup for free).
  options.solvers = {"local-search", "bag-lpt", "greedy-bags"};
  options.solve.seed = 13;
  return options;
}

struct ReplayOutcome {
  double delta_seconds = 0.0;     ///< time spent inside apply(), summed
  double migration_ratio_sum = 0.0;
  int regret_violations = 0;
  int failed_steps = 0;
  online::SessionStats stats;
};

ReplayOutcome replay(const gen::ChurnTrace& trace,
                     const online::SessionOptions& options,
                     const model::Schedule& initial_schedule) {
  ReplayOutcome outcome;
  online::ScheduleSession session(trace.initial, initial_schedule, options);
  const double cap = 1.0 + options.regret_bound;
  for (const model::Delta& delta : trace.deltas) {
    const auto start = std::chrono::steady_clock::now();
    const api::SolveResult result = session.apply(delta);
    outcome.delta_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!result.ok()) {
      ++outcome.failed_steps;
      continue;
    }
    outcome.migration_ratio_sum += result.migration_ratio;
    if (result.makespan > cap * result.lower_bound * (1.0 + 1e-9)) {
      ++outcome.regret_violations;
    }
  }
  outcome.stats = session.stats();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("delta", &argc, argv);
  const int reps = harness.reps(3);

  std::vector<Spec> specs(3);
  specs[0].label = "churn-160x12";
  specs[0].churn.num_jobs = 160;
  specs[0].churn.num_machines = 12;
  specs[0].churn.num_bags = 32;
  specs[0].churn.steps = 30;
  specs[0].churn.seed = 7;
  specs[1].label = "churn-200x16";
  specs[1].churn.steps = 30;
  specs[1].churn.seed = 11;
  specs[2].label = "churn-320x24";
  specs[2].churn.num_jobs = 320;
  specs[2].churn.num_machines = 24;
  specs[2].churn.num_bags = 64;
  specs[2].churn.steps = 30;
  specs[2].churn.seed = 3;

  const online::SessionOptions options = session_options();
  const api::Portfolio portfolio(options.solvers);

  bool contract_ok = true;
  double speedup_sum = 0.0;
  double migration_sum = 0.0;

  for (const Spec& spec : specs) {
    const gen::ChurnTrace trace = gen::churn_trace(spec.churn);
    const std::string label = spec.label;

    // Pre-solve the initial instance once; both sides replay from the
    // same committed schedule, so the timed regions are deltas only.
    const api::SolveResult initial =
        portfolio.solve(trace.initial, options.solve).best;
    if (!initial.ok()) {
      std::cerr << "FATAL: initial solve infeasible on " << label << "\n";
      return 1;
    }

    // Untimed replay to materialize every post-delta instance for the
    // fresh baseline.
    std::vector<model::Instance> snapshots;
    snapshots.reserve(trace.deltas.size());
    {
      model::Instance current = trace.initial;
      for (const model::Delta& delta : trace.deltas) {
        current = model::apply_delta(current, delta);
        snapshots.push_back(current);
      }
    }

    ReplayOutcome outcome;
    auto& repair_case = harness.run_case(label + "/repair", reps, [&] {
      outcome = replay(trace, options, initial.schedule);
    });
    const int steps = static_cast<int>(trace.deltas.size());
    const double resolves_per_sec =
        outcome.delta_seconds > 0.0 ? steps / outcome.delta_seconds : 0.0;
    const double mean_migration =
        steps > 0 ? outcome.migration_ratio_sum / steps : 0.0;
    repair_case.metrics.set("steps", static_cast<long long>(steps));
    repair_case.metrics.set("resolves_per_sec", resolves_per_sec);
    repair_case.metrics.set("mean_migration_ratio", mean_migration);
    repair_case.metrics.set(
        "noops", static_cast<long long>(outcome.stats.noops));
    repair_case.metrics.set(
        "memo_hits", static_cast<long long>(outcome.stats.memo_hits));
    repair_case.metrics.set(
        "repairs", static_cast<long long>(outcome.stats.repairs));
    repair_case.metrics.set(
        "region_resolves",
        static_cast<long long>(outcome.stats.region_resolves));
    repair_case.metrics.set(
        "fresh_solves",
        static_cast<long long>(outcome.stats.fresh_solves));
    repair_case.metrics.set(
        "moved_jobs_total",
        static_cast<long long>(outcome.stats.total_moved_jobs));
    const double repair_median = repair_case.median_seconds;

    if (outcome.failed_steps > 0) {
      std::cerr << "CONTRACT: " << outcome.failed_steps << " step(s) of "
                << label << " returned no usable schedule (churn traces "
                << "are feasible by construction)\n";
      contract_ok = false;
    }
    if (outcome.regret_violations > 0) {
      std::cerr << "CONTRACT: " << outcome.regret_violations
                << " committed schedule(s) of " << label
                << " exceed (1 + " << options.regret_bound
                << ") * lower bound\n";
      contract_ok = false;
    }

    auto& fresh_case = harness.run_case(label + "/fresh", reps, [&] {
      for (const model::Instance& snapshot : snapshots) {
        const api::SolveResult fresh =
            portfolio.solve(snapshot, options.solve).best;
        if (!fresh.ok()) {
          std::cerr << "FATAL: fresh solve infeasible on " << label << "\n";
          std::exit(1);
        }
      }
    });
    const double speedup = repair_median > 0.0
                               ? fresh_case.median_seconds / repair_median
                               : 0.0;
    fresh_case.metrics.set("steps", static_cast<long long>(steps));
    fresh_case.metrics.set("repair_speedup", speedup);

    speedup_sum += speedup;
    migration_sum += mean_migration;
  }

  const double mean_speedup =
      speedup_sum / static_cast<double>(specs.size());
  const double mean_migration =
      migration_sum / static_cast<double>(specs.size());
  std::cout << "\n=== online delta repair ===\n"
            << "  mean repair-vs-fresh speedup: " << mean_speedup
            << "x (target >= " << kMinSpeedup << "x)\n"
            << "  mean migration ratio: " << mean_migration
            << " (target <= " << kMaxMigrationRatio << ")\n";
  auto& summary = harness.run_case("summary/online", 1, [] {});
  summary.metrics.set("mean_repair_speedup", mean_speedup);
  summary.metrics.set("mean_migration_ratio", mean_migration);

  // Medians from a reps=1 smoke are noise; only the perf-gate run (which
  // uses reps >= 2) enforces the speed bar. The migration bar is
  // deterministic (same traces, same seeds) and holds at any rep count.
  bool perf_ok = true;
  if (reps >= 2 && mean_speedup < kMinSpeedup) {
    std::cerr << "PERF REGRESSION: mean repair-vs-fresh speedup "
              << mean_speedup << "x is below the " << kMinSpeedup
              << "x target\n";
    perf_ok = false;
  }
  if (mean_migration > kMaxMigrationRatio) {
    std::cerr << "MIGRATION REGRESSION: mean migration ratio "
              << mean_migration << " exceeds the " << kMaxMigrationRatio
              << " cap\n";
    perf_ok = false;
  }

  const bool wrote = harness.finish(std::cout);
  return wrote && contract_ok && perf_ok ? 0 : 1;
}
