// Network throughput: requests/sec through a loopback sched_server — the
// regression-tracked bench for the net subsystem (BENCH_net.json).
//
// Every case drives real TCP sockets against a live server on 127.0.0.1
// with a fast solver (greedy-bags on small instances), so the numbers
// measure the wire path itself: framing, JSON encode/decode, the poll
// loop, the sink bridge and flush — not solver time.
//
//   seq        one client, blocking round trips
//   pipelined  one connection, the whole batch in flight at once
//              (multiplexed ids), then stream all results back
//   4clients   four threads, each with its own connection
//
// Flags: --bench-json[=path] --bench-reps=N (see harness.h).
#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "harness.h"
#include "net/client.h"
#include "net/server.h"
#include "util/stopwatch.h"

namespace {

namespace api = bagsched::api;
namespace bench = bagsched::bench;
namespace net = bagsched::net;

api::SolveRequest small_request(std::uint64_t seed) {
  api::SolveOptions options;
  options.seed = seed % 16 + 1;
  return api::make_request(
      api::make_instance("uniform", 24, 4, options), options,
      {"greedy-bags"});
}

net::ServerConfig server_config() {
  net::ServerConfig config;
  config.port = 0;
  config.service.num_threads = 2;
  config.service.max_concurrent = 2;
  return config;
}

int run_sequential(std::uint16_t port, int requests) {
  auto client = net::Client::connect("127.0.0.1", port);
  int ok = 0;
  for (int i = 0; i < requests; ++i) {
    const auto result = client.solve(
        small_request(static_cast<std::uint64_t>(i)), std::to_string(i),
        /*want_progress=*/false, {}, /*want_schedule=*/false);
    if (result.ok()) ++ok;
  }
  return ok;
}

int run_pipelined(std::uint16_t port, int requests) {
  auto client = net::Client::connect("127.0.0.1", port);
  for (int i = 0; i < requests; ++i) {
    client.submit(small_request(static_cast<std::uint64_t>(i)),
                  std::to_string(i), /*want_progress=*/false,
                  /*want_schedule=*/false);
  }
  int finished = 0;
  while (finished < requests) {
    auto frame = client.read_frame();
    if (!frame.has_value()) break;
    if (frame->string_or("event", "") == "finished") ++finished;
  }
  return finished;
}

int run_multi_client(std::uint16_t port, int clients, int per_client) {
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([port, per_client, c, &ok] {
      auto client = net::Client::connect("127.0.0.1", port);
      for (int i = 0; i < per_client; ++i) {
        const auto result = client.solve(
            small_request(static_cast<std::uint64_t>(c * 1000 + i)),
            std::to_string(i), /*want_progress=*/false, {},
            /*want_schedule=*/false);
        if (result.ok()) ++ok;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return ok.load();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("net", &argc, argv);

  net::SchedServer server(server_config());
  server.start();
  const std::uint16_t port = server.port();

  const int kRequests = 64;
  {
    int ok = 0;
    double seconds = 0.0;
    auto& result = harness.run_case(
        "loopback/seq/64", harness.reps(3), [&] {
          bagsched::util::Stopwatch timer;
          ok = run_sequential(port, kRequests);
          seconds = timer.seconds();
        });
    result.metrics.set("requests", kRequests);
    result.metrics.set("ok", ok);
    result.metrics.set("reqs_per_s", kRequests / seconds);
  }
  {
    int finished = 0;
    double seconds = 0.0;
    auto& result = harness.run_case(
        "loopback/pipelined/64", harness.reps(3), [&] {
          bagsched::util::Stopwatch timer;
          finished = run_pipelined(port, kRequests);
          seconds = timer.seconds();
        });
    result.metrics.set("requests", kRequests);
    result.metrics.set("ok", finished);
    result.metrics.set("reqs_per_s", kRequests / seconds);
  }
  {
    const int kClients = 4;
    const int kPerClient = 16;
    int ok = 0;
    double seconds = 0.0;
    auto& result = harness.run_case(
        "loopback/4clients/16each", harness.reps(3), [&] {
          bagsched::util::Stopwatch timer;
          ok = run_multi_client(port, kClients, kPerClient);
          seconds = timer.seconds();
        });
    result.metrics.set("requests", kClients * kPerClient);
    result.metrics.set("ok", ok);
    result.metrics.set("reqs_per_s", kClients * kPerClient / seconds);
  }

  const auto counters = server.counters();
  std::cout << "server: " << counters.connections_accepted
            << " connections, " << counters.frames_in << " frames in, "
            << counters.frames_out << " frames out, " << counters.bytes_out
            << " bytes out\n";
  server.stop();
  server.wait();
  return harness.finish(std::cout) ? 0 : 1;
}
