// Durability benchmark: what the write-ahead session journal (DESIGN.md
// §8) costs on the paths that matter operationally.
//
//   journal/append/{off,interval,always}
//       raw append-before-ack throughput: one session_open plus N
//       delta_commit records per rep, under each fsync policy. Reported
//       as deltas_per_sec — the ceiling a journaled server could ack
//       commits at if solving were free.
//   journal/replay/10k
//       cold-boot recovery: open + replay of a journal holding one
//       session and 10k committed deltas (CRC scan, JSON parse, digest
//       verification per record — the 503 "recovering" window).
//   journal/session/{nojournal,interval}
//       the end-to-end contract: replay a churn trace through a live
//       online::ScheduleSession with and without journaling every
//       committed delta, exactly as the service does (append before the
//       ack). At reps >= 2 the journaled replay must stay within
//       kMaxOverhead (20%) of the no-journal re-solve rate — the
//       acceptance bar for "durability is affordable".
//
// Flags: --bench-json[=path] --bench-reps=N (see harness.h).
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "api/portfolio.h"
#include "gen/churn.h"
#include "harness.h"
#include "model/delta.h"
#include "online/session.h"
#include "persist/journal.h"
#include "persist/wal.h"

namespace {

namespace api = bagsched::api;
namespace bench = bagsched::bench;
namespace gen = bagsched::gen;
namespace model = bagsched::model;
namespace online = bagsched::online;
namespace persist = bagsched::persist;

/// Journaled session replay may be at most this much slower than the
/// bare one — the ISSUE.md acceptance bar for --fsync interval.
constexpr double kMaxOverhead = 0.20;

constexpr int kAppendsPerRep = 384;
constexpr int kReplayRecords = 10000;

/// mkdtemp wrapper; recursively removed (one level deep) on destruction.
class TempDir {
 public:
  TempDir() {
    char buffer[] = "/tmp/bagsched_bench_journal_XXXXXX";
    if (::mkdtemp(buffer) == nullptr) {
      std::cerr << "FATAL: mkdtemp: " << std::strerror(errno) << "\n";
      std::exit(1);
    }
    path_ = buffer;
  }
  ~TempDir() {
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

online::SessionOptions session_options() {
  online::SessionOptions options;
  // Match bench_delta: the latency-conscious half of the portfolio, so
  // the no-journal side is the same repair pipeline the delta bench
  // tracks and the overhead number isolates the journal.
  options.solvers = {"local-search", "bag-lpt", "greedy-bags"};
  options.solve.seed = 13;
  return options;
}

template <typename Fn>
double time_once(const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

persist::JournalConfig journal_config(const std::string& dir,
                                      persist::FsyncPolicy policy) {
  persist::JournalConfig config;
  config.dir = dir;
  config.fsync = policy;
  config.snapshot_every = 0;  // measure appends/replay, not compaction
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("journal", &argc, argv);
  const int reps = harness.reps(3);
  bool contract_ok = true;

  const online::SessionOptions options = session_options();
  const api::Portfolio portfolio(options.solvers);

  // A small instance whose solved schedule stands in for the per-commit
  // payload: delta_commit records carry the full committed assignment.
  gen::ChurnParams small;
  small.num_jobs = 48;
  small.num_machines = 6;
  small.num_bags = 12;
  small.steps = 1;
  small.seed = 21;
  const gen::ChurnTrace small_trace = gen::churn_trace(small);
  const api::SolveResult small_solved =
      portfolio.solve(small_trace.initial, options.solve).best;
  if (!small_solved.ok()) {
    std::cerr << "FATAL: payload instance infeasible\n";
    return 1;
  }
  // Payload-identical commits: an empty delta leaves the journal's shadow
  // instance untouched, so revisions can advance indefinitely while every
  // record still carries a real schedule + digest.
  const model::Delta noop_delta;

  // --- journal/append/{off,interval,always} -------------------------------
  const struct {
    const char* label;
    persist::FsyncPolicy policy;
  } policies[] = {
      {"journal/append/off", persist::FsyncPolicy::Off},
      {"journal/append/interval", persist::FsyncPolicy::Interval},
      {"journal/append/always", persist::FsyncPolicy::Always},
  };
  for (const auto& spec : policies) {
    TempDir dir;
    persist::SessionJournal journal(
        journal_config(dir.path(), spec.policy));
    journal.replay();
    std::uint64_t session_id = 0;
    auto& append_case = harness.run_case(spec.label, reps, [&] {
      ++session_id;
      journal.record_open(session_id, /*epoch=*/1, small_trace.initial,
                          options, small_solved.schedule);
      for (int i = 1; i <= kAppendsPerRep; ++i) {
        journal.record_commit(session_id, static_cast<std::uint64_t>(i),
                              noop_delta, small_solved.schedule);
      }
    });
    const persist::JournalStats stats = journal.stats();
    const double deltas_per_sec =
        append_case.median_seconds > 0.0
            ? kAppendsPerRep / append_case.median_seconds
            : 0.0;
    append_case.metrics.set("deltas_per_sec", deltas_per_sec);
    append_case.metrics.set("appends_per_rep",
                            static_cast<long long>(kAppendsPerRep + 1));
    append_case.metrics.set(
        "bytes_per_record",
        stats.records_appended > 0
            ? static_cast<double>(stats.bytes_appended) /
                  static_cast<double>(stats.records_appended)
            : 0.0);
    append_case.metrics.set("fsyncs",
                            static_cast<long long>(stats.fsyncs));
  }

  // --- journal/replay/10k -------------------------------------------------
  {
    TempDir dir;
    {
      // Build the corpus once, untimed: one open + 10k commits, no fsync.
      persist::SessionJournal writer(
          journal_config(dir.path(), persist::FsyncPolicy::Off));
      writer.replay();
      writer.record_open(1, /*epoch=*/1, small_trace.initial, options,
                         small_solved.schedule);
      for (int i = 1; i <= kReplayRecords; ++i) {
        writer.record_commit(1, static_cast<std::uint64_t>(i), noop_delta,
                             small_solved.schedule);
      }
      writer.sync();
    }  // destructor releases the LOCK so the timed opens can take it

    persist::RecoveredState recovered;
    std::uint64_t journal_bytes = 0;
    auto& replay_case = harness.run_case("journal/replay/10k", reps, [&] {
      persist::SessionJournal reader(
          journal_config(dir.path(), persist::FsyncPolicy::Off));
      recovered = reader.replay();
      journal_bytes = reader.stats().journal_bytes;
    });
    if (recovered.sessions.size() != 1 ||
        recovered.records_replayed !=
            static_cast<std::uint64_t>(kReplayRecords) + 1 ||
        recovered.sessions[0].revision !=
            static_cast<std::uint64_t>(kReplayRecords)) {
      std::cerr << "CONTRACT: replay corpus did not round-trip ("
                << recovered.sessions.size() << " session(s), "
                << recovered.records_replayed << " record(s))\n";
      contract_ok = false;
    }
    replay_case.metrics.set("records",
                            static_cast<long long>(kReplayRecords + 1));
    replay_case.metrics.set(
        "records_per_sec",
        replay_case.median_seconds > 0.0
            ? (kReplayRecords + 1) / replay_case.median_seconds
            : 0.0);
    replay_case.metrics.set("journal_bytes",
                            static_cast<long long>(journal_bytes));
  }

  // --- journal/session/{nojournal,interval} -------------------------------
  {
    gen::ChurnParams churn;
    churn.num_jobs = 320;
    churn.num_machines = 24;
    churn.num_bags = 64;
    // Long enough that each rep spans the --fsync interval flusher cycle
    // (default 100ms) a few times: reps much shorter than the cycle would
    // land 0-or-1 multi-ms fsyncs by timer accident and turn the overhead
    // ratio into a coin flip.
    churn.steps = 600;
    churn.seed = 3;
    const gen::ChurnTrace trace = gen::churn_trace(churn);
    const api::SolveResult initial =
        portfolio.solve(trace.initial, options.solve).best;
    if (!initial.ok()) {
      std::cerr << "FATAL: churn initial solve infeasible\n";
      return 1;
    }
    const int steps = static_cast<int>(trace.deltas.size());

    // The live session replay, optionally journaling every commit with
    // the service's append-before-ack ordering. `journal` == nullptr is
    // the bare baseline.
    const auto replay_trace = [&](persist::SessionJournal* journal,
                                  std::uint64_t session_id) {
      online::ScheduleSession session(trace.initial, initial.schedule,
                                      options);
      if (journal != nullptr) {
        journal->record_open(session_id, /*epoch=*/1, trace.initial,
                             options, initial.schedule);
      }
      std::uint64_t revision = 0;
      for (const model::Delta& delta : trace.deltas) {
        if (model::is_noop(delta)) continue;  // never commits or journals
        const api::SolveResult result = session.apply(delta);
        if (!result.ok()) {
          std::cerr << "FATAL: churn step returned no usable schedule\n";
          std::exit(1);
        }
        if (journal != nullptr) {
          // As the service journals: schedule + the post-delta instance
          // the session already holds (no re-derivation on the ack path).
          journal->record_commit(session_id, ++revision, delta,
                                 result.schedule, &session.instance());
        }
      }
    };

    auto& bare_case =
        harness.run_case("journal/session/nojournal", reps,
                         [&] { replay_trace(nullptr, 0); });
    bare_case.metrics.set("steps", static_cast<long long>(steps));
    bare_case.metrics.set(
        "deltas_per_sec",
        bare_case.median_seconds > 0.0
            ? steps / bare_case.median_seconds
            : 0.0);

    TempDir dir;
    persist::SessionJournal journal(
        journal_config(dir.path(), persist::FsyncPolicy::Interval));
    journal.replay();
    std::uint64_t session_id = 0;
    auto& journaled_case =
        harness.run_case("journal/session/interval", reps,
                         [&] { replay_trace(&journal, ++session_id); });

    // The contract ratio comes from paired A/B reps, not the two case
    // medians above: disk-latency swings (jbd2 commit stalls, writeback
    // storms) outlast a whole rep, so a storm landing on one case block
    // and not the other would turn the ratio into noise. Alternating
    // bare/journaled and taking the BEST paired ratio isolates the
    // journal's intrinsic cost — every pair spans the same flusher
    // cycles, so even the cleanest pair pays the real serialization +
    // append + fdatasync bill; the outlier pairs just add co-incident
    // disk stalls that would equally inflate any fsync-bearing workload.
    std::vector<double> ratios;
    const int pairs = reps >= 2 ? std::max(reps, 5) : reps;
    for (int pair = 0; pair < pairs; ++pair) {
      const double bare_s = time_once([&] { replay_trace(nullptr, 0); });
      const double journaled_s =
          time_once([&] { replay_trace(&journal, ++session_id); });
      if (bare_s > 0.0) ratios.push_back(journaled_s / bare_s);
    }
    const double overhead =
        ratios.empty()
            ? 0.0
            : *std::min_element(ratios.begin(), ratios.end()) - 1.0;
    journaled_case.metrics.set("steps", static_cast<long long>(steps));
    journaled_case.metrics.set(
        "deltas_per_sec",
        journaled_case.median_seconds > 0.0
            ? steps / journaled_case.median_seconds
            : 0.0);
    journaled_case.metrics.set("journal_overhead_pct", overhead * 100.0);
    journaled_case.metrics.set(
        "fsyncs", static_cast<long long>(journal.stats().fsyncs));

    std::cout << "\n=== session journal ===\n"
              << "  journal overhead at --fsync interval: "
              << overhead * 100.0 << "% (target <= "
              << kMaxOverhead * 100.0 << "%)\n";
    // reps=1 medians (the CI smoke) are too noisy to gate on; the
    // perf-gate run uses reps >= 2 and enforces the affordability bar.
    if (reps >= 2 && overhead > kMaxOverhead) {
      std::cerr << "PERF REGRESSION: journaled session replay is "
                << overhead * 100.0
                << "% slower than the no-journal baseline (cap "
                << kMaxOverhead * 100.0 << "%)\n";
      contract_ok = false;
    }
  }

  const bool wrote = harness.finish(std::cout);
  return wrote && contract_ok ? 0 : 1;
}
