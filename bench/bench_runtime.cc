// E2 (Theorem 1, running time): the EPTAS must scale polynomially in n at
// fixed eps (the f(1/eps) * poly(n) form). The n-sweep benchmarks the
// poly(n) part; the eps-sweep exposes the f(1/eps) blow-up. Driven through
// the unified bagsched::api layer; the EPTAS internals are read back from
// the result telemetry. Rows are timed through the regression harness and
// land in BENCH_runtime.json (--bench-json / --bench-reps, see harness.h).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "api/api.h"
#include "harness.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;

const api::Solver& eptas() {
  return api::SolverRegistry::global().resolve("eptas");
}

void print_scaling_table(bagsched::bench::Harness& harness) {
  const int reps = harness.reps(3);
  bagsched::util::Table table(
      {"sweep", "n", "m", "eps", "seconds", "guesses", "columns"});
  // n-sweep at fixed eps = 1/2.
  for (const int scale : {1, 2, 4, 8}) {
    const int m = 4 * scale;
    const auto planted =
        bagsched::gen::planted({.num_machines = m,
                                .num_bags = 3 * m,
                                .min_jobs_per_machine = 3,
                                .max_jobs_per_machine = 6,
                                .target = 1.0,
                                .seed = 7});
    api::SolveResult result;
    auto& entry = harness.run_case(
        "n-sweep/m" + std::to_string(m), reps,
        [&] { result = eptas().solve(planted.instance, {.eps = 0.5}); });
    entry.metrics.set("n",
                      static_cast<long long>(planted.instance.num_jobs()));
    entry.metrics.set("m", static_cast<long long>(m));
    entry.metrics.set("eps", 0.5);
    entry.metrics.set("guesses", api::stat_int(result.stats, "guesses"));
    entry.metrics.set("columns", api::stat_int(result.stats, "columns"));
    table.row()
        .add("n")
        .add(planted.instance.num_jobs())
        .add(m)
        .add(0.5, 3)
        .add(entry.median_seconds, 4)
        .add(api::stat_int(result.stats, "guesses"))
        .add(api::stat_int(result.stats, "columns"));
  }
  // eps-sweep at fixed shape.
  for (const double eps : {0.8, 0.6, 0.5, 0.4, 1.0 / 3.0}) {
    const auto planted =
        bagsched::gen::planted({.num_machines = 8,
                                .num_bags = 24,
                                .min_jobs_per_machine = 3,
                                .max_jobs_per_machine = 6,
                                .target = 1.0,
                                .seed = 7});
    api::SolveResult result;
    auto& entry = harness.run_case(
        "eps-sweep/" + std::to_string(eps).substr(0, 5), reps,
        [&] { result = eptas().solve(planted.instance, {.eps = eps}); });
    entry.metrics.set("n",
                      static_cast<long long>(planted.instance.num_jobs()));
    entry.metrics.set("m", 8);
    entry.metrics.set("eps", eps);
    entry.metrics.set("guesses", api::stat_int(result.stats, "guesses"));
    entry.metrics.set("columns", api::stat_int(result.stats, "columns"));
    table.row()
        .add("eps")
        .add(planted.instance.num_jobs())
        .add(8)
        .add(eps, 3)
        .add(entry.median_seconds, 4)
        .add(api::stat_int(result.stats, "guesses"))
        .add(api::stat_int(result.stats, "columns"));
  }
  std::cout << "\n=== E2 / Theorem 1: runtime scaling ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: near-linear growth in n at fixed eps; "
               "steeper growth as eps shrinks\n\n";
}

void BM_EptasVsN(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto planted =
      bagsched::gen::planted({.num_machines = m,
                              .num_bags = 3 * m,
                              .min_jobs_per_machine = 3,
                              .max_jobs_per_machine = 6,
                              .target = 1.0,
                              .seed = 7});
  for (auto _ : state) {
    auto result = eptas().solve(planted.instance, {.eps = 0.5});
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["n"] = planted.instance.num_jobs();
}
BENCHMARK(BM_EptasVsN)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_EptasVsEps(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  const auto planted =
      bagsched::gen::planted({.num_machines = 8,
                              .num_bags = 24,
                              .min_jobs_per_machine = 3,
                              .max_jobs_per_machine = 6,
                              .target = 1.0,
                              .seed = 7});
  for (auto _ : state) {
    auto result = eptas().solve(planted.instance, {.eps = eps});
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_EptasVsEps)->Arg(80)->Arg(50)->Arg(40)->Arg(33)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bagsched::bench::Harness harness("runtime", &argc, argv);
  print_scaling_table(harness);
  if (!harness.finish(std::cout)) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
