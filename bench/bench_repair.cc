// E6 (Lemmas 7 and 11): conflict repair. On conflict-dense families the
// placement stage must repair B_x slot collisions by swapping (Lemma 7) and
// the small-job stage must undo the interactions of those swaps via the
// origin chain (Lemma 11). The table counts repairs and verifies the final
// schedule never needs more than the rescue-free structure on these
// families (rescues = structure breaks, ideally 0).
#include <benchmark/benchmark.h>

#include <iostream>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "util/csv.h"

namespace {

namespace gen = bagsched::gen;

void print_repair_table() {
  bagsched::util::Table table({"family", "seed", "n", "swaps",
                               "origin_repairs", "lift_swaps", "rescues",
                               "fallback", "makespan/LB"});
  for (const auto* family : {"replica", "bagheavy", "figure1", "mixed"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto instance = gen::by_name(family, 48, 8, seed);
      const auto result = bagsched::eptas::eptas_schedule(instance, 0.5);
      const double lower =
          bagsched::model::combined_lower_bound(instance);
      table.row()
          .add(family)
          .add(static_cast<long long>(seed))
          .add(instance.num_jobs())
          .add(result.stats.swaps)
          .add(result.stats.origin_repairs)
          .add(result.stats.lift_swaps)
          .add(result.stats.rescues)
          .add(result.stats.used_fallback ? "yes" : "no")
          .add(result.makespan / lower, 4);
    }
  }
  std::cout << "\n=== E6 / Lemmas 7+11: conflict repair counts ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: repairs bounded and cheap; makespan/LB "
               "<= 1 + O(eps) even on conflict-dense families\n\n";
}

void BM_EptasConflictDense(benchmark::State& state) {
  const auto instance = gen::by_name(
      "replica", static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    auto result = bagsched::eptas::eptas_schedule(instance, 0.5);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_EptasConflictDense)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_repair_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
