// E6 (Lemmas 7 and 11): conflict repair. On conflict-dense families the
// placement stage must repair B_x slot collisions by swapping (Lemma 7) and
// the small-job stage must undo the interactions of those swaps via the
// origin chain (Lemma 11). The table counts repairs (read back from the
// api telemetry) and verifies the final schedule never needs more than the
// rescue-free structure on these families (rescues = structure breaks,
// ideally 0).
#include <benchmark/benchmark.h>

#include <iostream>

#include "api/api.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;

void print_repair_table() {
  bagsched::util::Table table({"family", "seed", "n", "swaps",
                               "origin_repairs", "lift_swaps", "rescues",
                               "fallback", "makespan/LB"});
  for (const auto* family : {"replica", "bagheavy", "figure1", "mixed"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      api::SolveOptions options;
      options.eps = 0.5;
      options.seed = seed;
      const auto instance = api::make_instance(family, 48, 8, options);
      const auto result = api::solve("eptas", instance, options);
      table.row()
          .add(family)
          .add(static_cast<long long>(seed))
          .add(instance.num_jobs())
          .add(api::stat_int(result.stats, "swaps"))
          .add(api::stat_int(result.stats, "origin_repairs"))
          .add(api::stat_int(result.stats, "lift_swaps"))
          .add(api::stat_int(result.stats, "rescues"))
          .add(api::stat_bool(result.stats, "used_fallback") ? "yes" : "no")
          .add(result.makespan / result.lower_bound, 4);
    }
  }
  std::cout << "\n=== E6 / Lemmas 7+11: conflict repair counts ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: repairs bounded and cheap; makespan/LB "
               "<= 1 + O(eps) even on conflict-dense families\n\n";
}

void BM_EptasConflictDense(benchmark::State& state) {
  const auto instance = api::make_instance(
      "replica", static_cast<int>(state.range(0)), 8, {.seed = 1});
  const auto& solver = api::SolverRegistry::global().resolve("eptas");
  for (auto _ : state) {
    auto result = solver.solve(instance, {.eps = 0.5});
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_EptasConflictDense)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_repair_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
