// E1 (Theorem 1, approximation ratio): EPTAS makespan against the planted
// optimum across eps values, machine counts and seeds. The paper proves
// ratio <= 1 + O(eps); the table's `max_ratio` column must stay below
// 1 + c*eps with a small c, and shrink as eps shrinks. The EPTAS runs
// through bagsched::api; pipeline internals come from the telemetry.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "api/api.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;

const api::Solver& eptas() {
  return api::SolverRegistry::global().resolve("eptas");
}

void print_ratio_table() {
  bagsched::util::Table table({"eps", "m", "jobs~", "seeds", "mean_ratio",
                               "max_ratio", "pipe_max", "bound(1+2eps)",
                               "pipe_fail"});
  for (const double eps : {0.75, 0.5, 1.0 / 3.0, 0.25}) {
    for (const int m : {4, 8, 16}) {
      double sum_ratio = 0.0;
      double max_ratio = 0.0;
      double pipe_max = 0.0;  // ratio of the pipeline's own schedule
      int pipe_fail = 0;
      int jobs = 0;
      const int seeds = 5;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto planted =
            bagsched::gen::planted({.num_machines = m,
                                    .num_bags = 3 * m,
                                    .min_jobs_per_machine = 2,
                                    .max_jobs_per_machine = 5,
                                    .target = 1.0,
                                    .seed = seed});
        jobs = planted.instance.num_jobs();
        const auto result = eptas().solve(planted.instance, {.eps = eps});
        const double ratio = result.makespan / planted.opt;
        sum_ratio += ratio;
        max_ratio = std::max(max_ratio, ratio);
        if (api::stat_bool(result.stats, "pipeline_succeeded")) {
          pipe_max = std::max(
              pipe_max,
              api::stat_real(result.stats, "pipeline_makespan") /
                  planted.opt);
        } else {
          ++pipe_fail;
        }
      }
      table.row()
          .add(eps, 3)
          .add(m)
          .add(jobs)
          .add(seeds)
          .add(sum_ratio / seeds, 4)
          .add(max_ratio, 4)
          .add(pipe_max, 4)
          .add(1.0 + 2.0 * eps, 3)
          .add(pipe_fail);
    }
  }
  std::cout << "\n=== E1 / Theorem 1: EPTAS ratio vs planted OPT ===\n";
  table.write_aligned(std::cout);
  std::cout << "mean/max_ratio: returned schedule (pipeline or fallback, "
               "whichever is better).\npipe_max: the pipeline's own "
               "schedule — the Theorem 1 object; must stay <= bound.\n"
               "expected shape: ratios <= bound and non-increasing in eps, "
               "pipe_fail = 0\n\n";
}

void BM_EptasPlanted(benchmark::State& state) {
  const auto planted = bagsched::gen::planted(
      {.num_machines = static_cast<int>(state.range(0)),
       .num_bags = static_cast<int>(3 * state.range(0)),
       .min_jobs_per_machine = 2,
       .max_jobs_per_machine = 5,
       .target = 1.0,
       .seed = 1});
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    auto result = eptas().solve(planted.instance, {.eps = eps});
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_EptasPlanted)
    ->Args({8, 50})
    ->Args({8, 33})
    ->Args({16, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ratio_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
