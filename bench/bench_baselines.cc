// E9 (baseline table): all algorithms across all families, driven through
// the unified bagsched::api registry. Reports makespan relative to the best
// lower bound (ratio columns) and wall time. Expected ordering:
// eptas <= local_search <= greedy on quality, with the inverse on time; the
// unconstrained LPT column shows the price of the bag-constraints (it may
// be infeasible w.r.t. bags and is only a bound).
#include <benchmark/benchmark.h>

#include <iostream>

#include "api/api.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;

void print_baseline_table() {
  const std::vector<std::string> solvers{"lpt", "greedy-bags", "bag-lpt",
                                         "multifit", "local-search",
                                         "eptas"};
  std::vector<std::string> header{"family", "n", "m", "LB"};
  for (const auto& name : solvers) header.push_back(name);
  header.push_back("eptas_s");
  bagsched::util::Table table(header);

  const int seeds = 3;
  for (const auto& family : api::instance_families()) {
    double lb = 0;
    std::vector<double> ratio(solvers.size(), 0.0);
    double eptas_seconds = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      api::SolveOptions options;
      options.seed = seed;
      const auto instance = api::make_instance(family, 48, 8, options);
      for (std::size_t s = 0; s < solvers.size(); ++s) {
        const auto result = api::solve(solvers[s], instance, options);
        ratio[s] += result.makespan / result.lower_bound;
        if (solvers[s] == "eptas") {
          eptas_seconds += result.wall_seconds;
          lb += result.lower_bound;
        }
      }
    }
    table.row().add(family).add(48).add(8).add(lb / seeds, 3);
    for (const double sum : ratio) table.add(sum / seeds, 4);
    table.add(eptas_seconds / seeds, 4);
  }
  std::cout << "\n=== E9: algorithm comparison (ratio vs lower bound, "
               "mean over seeds) ===\n";
  table.write_aligned(std::cout);
  std::cout << "lpt ignores bag-constraints (not generally feasible); it "
               "lower-bounds what constrained algorithms can reach.\n"
               "expected shape: eptas <= local <= greedy/bag_lpt on every "
               "family; eptas pays in time.\n\n";
}

// The BM_ loops time Solver::solve, i.e. algorithm + api wrapper (instance
// validation, lower bound, schedule validation) — the cost an api caller
// actually pays. For the cheap heuristics the wrapper is a visible constant;
// compare BM_ numbers against each other, not against pre-api history.
void BM_Greedy(benchmark::State& state) {
  const auto instance = api::make_instance("uniform", 200, 16, {.seed = 1});
  const auto& solver = api::SolverRegistry::global().resolve("greedy-bags");
  for (auto _ : state) {
    auto result = solver.solve(instance);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_Greedy)->Unit(benchmark::kMicrosecond);

void BM_LocalSearch(benchmark::State& state) {
  const auto instance = api::make_instance("uniform", 200, 16, {.seed = 1});
  const auto& solver = api::SolverRegistry::global().resolve("local-search");
  for (auto _ : state) {
    auto result = solver.solve(instance);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_LocalSearch)->Unit(benchmark::kMillisecond);

void BM_Eptas(benchmark::State& state) {
  const auto instance = api::make_instance("uniform", 200, 16, {.seed = 1});
  const auto& solver = api::SolverRegistry::global().resolve("eptas");
  for (auto _ : state) {
    auto result = solver.solve(instance);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_Eptas)->Unit(benchmark::kMillisecond);

void BM_Portfolio(benchmark::State& state) {
  const auto instance = api::make_instance("uniform", 200, 16, {.seed = 1});
  api::Portfolio portfolio;
  for (auto _ : state) {
    auto result = portfolio.solve(instance);
    benchmark::DoNotOptimize(result.best.makespan);
  }
}
BENCHMARK(BM_Portfolio)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_baseline_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
