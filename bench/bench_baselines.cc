// E9 (baseline table): all algorithms across all families. Reports
// makespan relative to the best lower bound (ratio columns) and wall time.
// Expected ordering: eptas <= local_search <= greedy on quality, with the
// inverse on time; the unconstrained LPT column shows the price of the
// bag-constraints (it may be infeasible w.r.t. bags and is only a bound).
#include <benchmark/benchmark.h>

#include <iostream>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/bag_lpt.h"
#include "sched/exact.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "sched/lpt.h"
#include "sched/multifit.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace {

namespace gen = bagsched::gen;
namespace sched = bagsched::sched;
using bagsched::model::Instance;

void print_baseline_table() {
  bagsched::util::Table table({"family", "n", "m", "LB", "lpt*",
                               "greedy", "bag_lpt", "multifit", "local",
                               "eptas", "eptas_s"});
  const int seeds = 3;
  for (const auto& family : gen::family_names()) {
    double lb = 0, lpt = 0, greedy = 0, baglpt = 0, mf = 0, local = 0,
           ep = 0;
    double eptas_seconds = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Instance instance = gen::by_name(family, 48, 8, seed);
      const double lower =
          bagsched::model::combined_lower_bound(instance);
      lb += lower;
      lpt += sched::lpt(instance).makespan(instance) / lower;
      greedy += sched::greedy_bags(instance).makespan(instance) / lower;
      baglpt += sched::bag_lpt(instance).makespan(instance) / lower;
      mf += sched::multifit(instance).makespan(instance) / lower;
      local += sched::local_search(instance).makespan(instance) / lower;
      bagsched::util::Stopwatch timer;
      const auto result = bagsched::eptas::eptas_schedule(instance, 0.5);
      eptas_seconds += timer.seconds();
      ep += result.makespan / lower;
    }
    table.row()
        .add(family)
        .add(48)
        .add(8)
        .add(lb / seeds, 3)
        .add(lpt / seeds, 4)
        .add(greedy / seeds, 4)
        .add(baglpt / seeds, 4)
        .add(mf / seeds, 4)
        .add(local / seeds, 4)
        .add(ep / seeds, 4)
        .add(eptas_seconds / seeds, 4);
  }
  std::cout << "\n=== E9: algorithm comparison (ratio vs lower bound, "
               "mean over seeds) ===\n";
  table.write_aligned(std::cout);
  std::cout << "lpt* ignores bag-constraints (not generally feasible); it "
               "lower-bounds what constrained algorithms can reach.\n"
               "expected shape: eptas <= local <= greedy/bag_lpt on every "
               "family; eptas pays in time.\n\n";
}

void BM_Greedy(benchmark::State& state) {
  const Instance instance = gen::by_name("uniform", 200, 16, 1);
  for (auto _ : state) {
    auto schedule = sched::greedy_bags(instance);
    benchmark::DoNotOptimize(schedule.num_jobs());
  }
}
BENCHMARK(BM_Greedy)->Unit(benchmark::kMicrosecond);

void BM_LocalSearch(benchmark::State& state) {
  const Instance instance = gen::by_name("uniform", 200, 16, 1);
  for (auto _ : state) {
    auto schedule = sched::local_search(instance);
    benchmark::DoNotOptimize(schedule.num_jobs());
  }
}
BENCHMARK(BM_LocalSearch)->Unit(benchmark::kMillisecond);

void BM_Eptas(benchmark::State& state) {
  const Instance instance = gen::by_name("uniform", 200, 16, 1);
  for (auto _ : state) {
    auto result = bagsched::eptas::eptas_schedule(instance, 0.5);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_Eptas)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_baseline_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
