// E3 (Figure 1): the paper's motivating example. Packing large jobs tightly
// (height-OPT for the large jobs alone) forces small jobs of a tight bag to
// overload a machine; a globally-informed placement achieves OPT. The table
// regenerates the figure as measured makespans: the stacking heuristic must
// sit at 5/3 * OPT while the EPTAS stays within its (1+O(eps)) band. All
// solvers are resolved through the bagsched::api registry.
#include <benchmark/benchmark.h>

#include <iostream>

#include "api/api.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;
namespace gen = bagsched::gen;

void print_fig1_table() {
  bagsched::util::Table table({"m", "OPT", "stack_greedy", "greedy",
                               "bag_lpt", "local_search", "eptas(.4)",
                               "stack/OPT", "eptas/OPT"});
  for (const int m : {4, 8, 16, 32}) {
    const auto planted =
        gen::figure1({.num_machines = m, .scale = 1.0, .seed = 1});
    const auto& instance = planted.instance;
    api::SolveOptions options;
    options.eps = 0.4;
    options.stack_threshold = 0.5;
    const double stack =
        api::solve("greedy-stack", instance, options).makespan;
    const double greedy =
        api::solve("greedy-bags", instance, options).makespan;
    const double baglpt = api::solve("bag-lpt", instance, options).makespan;
    const double local =
        api::solve("local-search", instance, options).makespan;
    const double eptas = api::solve("eptas", instance, options).makespan;
    table.row()
        .add(m)
        .add(planted.opt, 4)
        .add(stack, 4)
        .add(greedy, 4)
        .add(baglpt, 4)
        .add(local, 4)
        .add(eptas, 4)
        .add(stack / planted.opt, 4)
        .add(eptas / planted.opt, 4);
  }
  std::cout << "\n=== E3 / Figure 1: large-job placement matters ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: stack/OPT == 5/3 (the trap), "
               "eptas/OPT <= 1 + O(eps)\n\n";
}

void BM_Fig1Eptas(benchmark::State& state) {
  const auto planted = gen::figure1(
      {.num_machines = static_cast<int>(state.range(0)), .scale = 1.0,
       .seed = 1});
  const auto& solver = api::SolverRegistry::global().resolve("eptas");
  for (auto _ : state) {
    auto result = solver.solve(planted.instance, {.eps = 0.4});
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_Fig1Eptas)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig1_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
