// Speedup curve of the work-stealing parallel exact branch-and-bound over
// the sequential engine on the standard hard-instance set (twopoint and
// uniform shapes sized so the sequential search runs 10^5..10^7 nodes).
// Each instance is solved sequentially, then at 1/2/4/8 worker threads;
// makespans must agree bit-identically and the per-thread-count speedups
// land in BENCH_exact.json for regression tracking.
//
// Flags: --bench-json[=path] --bench-reps=N (see harness.h).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "harness.h"
#include "sched/exact.h"
#include "sched/exact_parallel.h"

namespace {

namespace bench = bagsched::bench;
namespace gen = bagsched::gen;
namespace sched = bagsched::sched;

struct Spec {
  const char* family;
  int jobs;
  int machines;
  std::uint64_t seed;
};

std::string label_of(const Spec& spec) {
  return std::string(spec.family) + "-" + std::to_string(spec.jobs) + "x" +
         std::to_string(spec.machines) + "-s" + std::to_string(spec.seed);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("exact", &argc, argv);
  const int reps = harness.reps(3);

  const std::vector<Spec> specs = {
      {"twopoint", 24, 4, 1},
      {"twopoint", 26, 4, 2},
      {"twopoint", 26, 4, 3},
      {"uniform", 24, 5, 2},
  };
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  bool consistent = true;
  std::vector<double> speedup_sum(thread_counts.size(), 0.0);
  for (const Spec& spec : specs) {
    const auto instance =
        gen::by_name(spec.family, spec.jobs, spec.machines, spec.seed);
    const std::string label = label_of(spec);

    sched::ExactResult seq;
    auto& seq_case =
        harness.run_case(label + "/seq", reps, [&] {
          sched::ExactOptions options;
          options.time_limit_seconds = 120.0;
          seq = sched::solve_exact(instance, options);
        });
    seq_case.metrics.set("nodes", seq.nodes);
    seq_case.metrics.set("makespan", seq.makespan);
    seq_case.metrics.set("proven_optimal", seq.proven_optimal);
    const double seq_median = seq_case.median_seconds;

    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
      const int threads = thread_counts[t];
      sched::ExactResult par;
      auto& par_case = harness.run_case(
          label + "/t" + std::to_string(threads), reps, [&] {
            sched::ExactParallelOptions options;
            options.base.time_limit_seconds = 120.0;
            options.num_threads = threads;
            par = sched::solve_exact_parallel(instance, options);
          });
      const double speedup =
          par_case.median_seconds > 0.0
              ? seq_median / par_case.median_seconds
              : 0.0;
      par_case.metrics.set("threads", static_cast<long long>(threads));
      par_case.metrics.set("nodes", par.nodes);
      par_case.metrics.set("makespan", par.makespan);
      par_case.metrics.set("proven_optimal", par.proven_optimal);
      par_case.metrics.set("speedup_vs_seq", speedup);
      speedup_sum[t] += speedup;
      if (std::abs(par.makespan - seq.makespan) > 0.0 ||
          par.proven_optimal != seq.proven_optimal) {
        std::cerr << "MISMATCH on " << label << " at " << threads
                  << " threads: seq " << seq.makespan << "/"
                  << seq.proven_optimal << " vs par " << par.makespan << "/"
                  << par.proven_optimal << "\n";
        consistent = false;
      }
    }
  }

  std::cout << "\n=== exact-parallel speedup vs sequential ===\n";
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    const double mean = speedup_sum[t] / static_cast<double>(specs.size());
    std::cout << "  " << thread_counts[t] << " threads: mean speedup "
              << mean << "x\n";
    auto& summary = harness.run_case(
        "summary/t" + std::to_string(thread_counts[t]), 1, [] {});
    summary.metrics.set("threads",
                        static_cast<long long>(thread_counts[t]));
    summary.metrics.set("mean_speedup", mean);
  }
  std::cout << "(speedups depend on available cores; this machine reports "
            << std::thread::hardware_concurrency() << ")\n";

  const bool wrote = harness.finish(std::cout);
  return wrote && consistent ? 0 : 1;
}
