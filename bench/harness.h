// Regression-tracked benchmark harness shared by the bench/ binaries.
//
// Times each case over a configurable number of repetitions, reports the
// median (plus min/max) and writes a machine-readable JSON file so CI and
// future PRs have a performance trajectory to diff against:
//
//   bagsched::bench::Harness harness("exact", &argc, argv);
//   auto& c = harness.run_case("twopoint-26x4/seq", harness.reps(5),
//                              [&] { run_the_thing(); });
//   c.metrics.set("nodes", nodes);
//   return harness.finish(std::cout) ? 0 : 1;
//
// Command-line flags (consumed from argv so they never reach
// benchmark::Initialize):
//   --bench-json[=path]   write BENCH_<name>.json (or the given path)
//   --bench-reps=N        override every case's repetition count (CI smoke
//                         runs use N=1)
//
// finish() re-parses the emitted file through util::Json, so a bench that
// writes malformed JSON exits non-zero and CI catches perf-tooling rot.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace bagsched::bench {

struct CaseResult {
  std::string label;
  int reps = 0;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  util::Json metrics = util::Json::object();  ///< free-form per-case data
};

class Harness {
 public:
  /// Parses and removes the --bench-* flags from argc/argv.
  Harness(std::string name, int* argc, char** argv);

  const std::string& name() const { return name_; }
  bool json_requested() const { return json_requested_; }
  const std::string& json_path() const { return json_path_; }

  /// The repetition count to use: `default_reps` unless --bench-reps.
  int reps(int default_reps) const;

  /// Times fn() `reps` times (>= 1) and records the case; the returned
  /// reference is valid until the next run_case and accepts metrics.
  CaseResult& run_case(const std::string& label, int reps,
                       const std::function<void()>& fn);

  util::Json to_json() const;
  void print_summary(std::ostream& out) const;

  /// Prints the summary and, when requested, writes the JSON file and
  /// validates it by re-parsing. False = write/parse failure (exit code).
  bool finish(std::ostream& out);

 private:
  std::string name_;
  bool json_requested_ = false;
  std::string json_path_;
  int reps_override_ = 0;
  std::vector<CaseResult> cases_;
};

}  // namespace bagsched::bench
