#include "harness.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/stopwatch.h"

namespace bagsched::bench {

Harness::Harness(std::string name, int* argc, char** argv)
    : name_(std::move(name)), json_path_("BENCH_" + name_ + ".json") {
  if (argc == nullptr || argv == nullptr) return;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-json") {
      json_requested_ = true;
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      json_requested_ = true;
      json_path_ = arg.substr(std::strlen("--bench-json="));
    } else if (arg.rfind("--bench-reps=", 0) == 0) {
      // Strict parse: atoi would turn "--bench-reps=abc" into 0 and the
      // bench would silently skip real measurement; reject instead.
      const std::string value = arg.substr(std::strlen("--bench-reps="));
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 1 ||
          parsed > 1'000'000) {
        std::cerr << "harness: invalid --bench-reps value \"" << value
                  << "\" (expected an integer in [1, 1000000])\n";
        std::exit(2);
      }
      reps_override_ = static_cast<int>(parsed);
    } else {
      argv[out++] = argv[i];  // keep for benchmark::Initialize etc.
    }
  }
  *argc = out;
}

int Harness::reps(int default_reps) const {
  return reps_override_ > 0 ? reps_override_ : std::max(1, default_reps);
}

CaseResult& Harness::run_case(const std::string& label, int reps,
                              const std::function<void()>& fn) {
  reps = std::max(1, reps);
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch timer;
    fn();
    seconds.push_back(timer.seconds());
  }
  std::sort(seconds.begin(), seconds.end());
  CaseResult result;
  result.label = label;
  result.reps = reps;
  result.min_seconds = seconds.front();
  result.max_seconds = seconds.back();
  const std::size_t half = seconds.size() / 2;
  result.median_seconds =
      seconds.size() % 2 == 1
          ? seconds[half]
          : 0.5 * (seconds[half - 1] + seconds[half]);
  cases_.push_back(std::move(result));
  return cases_.back();
}

util::Json Harness::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("bench", name_);
  util::Json cases = util::Json::array();
  for (const CaseResult& c : cases_) {
    util::Json entry = util::Json::object();
    entry.set("label", c.label);
    entry.set("reps", static_cast<long long>(c.reps));
    entry.set("median_seconds", c.median_seconds);
    entry.set("min_seconds", c.min_seconds);
    entry.set("max_seconds", c.max_seconds);
    entry.set("metrics", c.metrics);
    cases.push_back(std::move(entry));
  }
  doc.set("cases", std::move(cases));
  return doc;
}

void Harness::print_summary(std::ostream& out) const {
  std::size_t width = 5;
  for (const CaseResult& c : cases_) {
    width = std::max(width, c.label.size());
  }
  out << "\n=== bench " << name_ << " (median of k) ===\n";
  for (const CaseResult& c : cases_) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << c.label
        << " reps=" << c.reps << "  median=" << std::fixed
        << std::setprecision(4) << c.median_seconds << "s"
        << "  min=" << c.min_seconds << "s  max=" << c.max_seconds << "s\n";
  }
  out.unsetf(std::ios::fixed);
}

bool Harness::finish(std::ostream& out) {
  print_summary(out);
  if (!json_requested_) return true;
  const std::string text = to_json().dump(2);
  {
    std::ofstream file(json_path_);
    if (!file) {
      std::cerr << "harness: cannot open " << json_path_
                << " for writing\n";
      return false;
    }
    file << text << "\n";
  }
  // Self-validation: the emitted document must round-trip through the
  // strict parser, so CI notices perf-tooling rot immediately.
  try {
    const util::Json back = util::Json::parse(text);
    if (!back.is_object() || !back.contains("cases")) {
      std::cerr << "harness: emitted JSON lost its shape\n";
      return false;
    }
  } catch (const std::exception& error) {
    std::cerr << "harness: emitted JSON does not parse: " << error.what()
              << "\n";
    return false;
  }
  out << "wrote " << json_path_ << " (" << cases_.size() << " cases)\n";
  return true;
}

}  // namespace bagsched::bench
