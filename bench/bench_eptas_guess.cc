// Guess-search benchmark of the EPTAS: single-thread cross-guess reuse
// (warm-start anchor + grid-signature memo) versus the cold pipeline, and
// the speculative-parallel thread curve, on guess-heavy two-point cases
// (eps = 0.1 with a fine step fraction makes the dual-approximation search
// probe several adjacent guesses that round almost identically).
//
// Contract checks: the warm thread curve must return bit-identical
// makespan/final_guess at 1/2/4/8 threads, and — when the repetition count
// is high enough to trust the medians (reps >= 2, i.e. the perf-gate run,
// not the reps=1 CI smoke) — the mean single-thread reuse speedup must be
// >= 1.3x, the acceptance bar for the cross-guess reuse axis.
//
// Flags: --bench-json[=path] --bench-reps=N (see harness.h).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "harness.h"
#include "model/schedule.h"

namespace {

namespace bench = bagsched::bench;
namespace eptas = bagsched::eptas;
namespace gen = bagsched::gen;

constexpr double kMinReuseSpeedup = 1.3;

struct Spec {
  const char* family;
  int jobs;
  int machines;
  std::uint64_t seed;
  double eps;
  double step_fraction;
};

std::string label_of(const Spec& spec) {
  return std::string(spec.family) + "-" + std::to_string(spec.jobs) + "x" +
         std::to_string(spec.machines) + "-s" + std::to_string(spec.seed);
}

eptas::EptasConfig config_of(const Spec& spec, bool warm, int threads) {
  eptas::EptasConfig config;
  config.warm_start = warm;
  config.num_threads = threads;
  config.guess_step_fraction = spec.step_fraction;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("eptas", &argc, argv);
  const int reps = harness.reps(3);

  const std::vector<Spec> specs = {
      {"twopoint", 60, 12, 1, 0.1, 0.25},
      {"twopoint", 60, 12, 2, 0.1, 0.25},
      {"twopoint", 60, 12, 5, 0.1, 0.25},
  };
  const std::vector<int> thread_counts = {2, 4, 8};

  bool consistent = true;
  double reuse_speedup_sum = 0.0;
  std::vector<double> thread_speedup_sum(thread_counts.size(), 0.0);

  for (const Spec& spec : specs) {
    const auto instance =
        gen::by_name(spec.family, spec.jobs, spec.machines, spec.seed);
    const std::string label = label_of(spec);

    eptas::EptasResult cold;
    auto& cold_case = harness.run_case(label + "/cold", reps, [&] {
      cold = eptas::eptas_schedule(instance, spec.eps,
                                   config_of(spec, false, 1));
    });
    cold_case.metrics.set("makespan", cold.makespan);
    cold_case.metrics.set("guesses",
                          static_cast<long long>(cold.stats.guesses_tried));
    // References from run_case only live until the next run_case; keep the
    // medians needed for the speedup ratios as values.
    const double cold_median = cold_case.median_seconds;

    eptas::EptasResult warm;
    auto& warm_case = harness.run_case(label + "/warm", reps, [&] {
      warm = eptas::eptas_schedule(instance, spec.eps,
                                   config_of(spec, true, 1));
    });
    const double warm_median = warm_case.median_seconds;
    const double reuse_speedup =
        warm_median > 0.0 ? cold_median / warm_median : 0.0;
    warm_case.metrics.set("makespan", warm.makespan);
    warm_case.metrics.set("guesses",
                          static_cast<long long>(warm.stats.guesses_tried));
    warm_case.metrics.set(
        "memo_hits", static_cast<long long>(warm.stats.probes_memo_hits));
    warm_case.metrics.set(
        "warm_columns",
        static_cast<long long>(warm.stats.columns_warm_started));
    warm_case.metrics.set(
        "pricing_rounds_saved",
        static_cast<long long>(warm.stats.pricing_rounds_saved));
    warm_case.metrics.set("reuse_speedup", reuse_speedup);
    reuse_speedup_sum += reuse_speedup;

    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
      const int threads = thread_counts[t];
      eptas::EptasResult par;
      auto& par_case = harness.run_case(
          label + "/t" + std::to_string(threads), reps, [&] {
            par = eptas::eptas_schedule(instance, spec.eps,
                                        config_of(spec, true, threads));
          });
      const double speedup =
          par_case.median_seconds > 0.0
              ? warm_median / par_case.median_seconds
              : 0.0;
      par_case.metrics.set("threads", static_cast<long long>(threads));
      par_case.metrics.set("makespan", par.makespan);
      par_case.metrics.set("speedup_vs_warm1", speedup);
      thread_speedup_sum[t] += speedup;
      // The determinism contract: bit-identical results at every thread
      // count. (cold-vs-warm may legitimately differ — reuse seeds the
      // master's column pool — so only the warm curve is compared.)
      if (par.makespan != warm.makespan ||
          par.stats.final_guess != warm.stats.final_guess ||
          par.schedule.assignment() != warm.schedule.assignment()) {
        std::cerr << "MISMATCH on " << label << " at " << threads
                  << " threads: warm1 " << warm.makespan << "/"
                  << warm.stats.final_guess << " vs " << par.makespan
                  << "/" << par.stats.final_guess << "\n";
        consistent = false;
      }
    }
  }

  const double mean_reuse =
      reuse_speedup_sum / static_cast<double>(specs.size());
  std::cout << "\n=== eptas guess search: cross-guess reuse ===\n"
            << "  mean single-thread speedup (warm vs cold): " << mean_reuse
            << "x (target >= " << kMinReuseSpeedup << "x)\n";
  auto& reuse_summary = harness.run_case("summary/reuse", 1, [] {});
  reuse_summary.metrics.set("mean_reuse_speedup", mean_reuse);

  std::cout << "=== eptas guess search: speculative threads ===\n";
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    const double mean =
        thread_speedup_sum[t] / static_cast<double>(specs.size());
    std::cout << "  " << thread_counts[t] << " threads: mean speedup "
              << mean << "x vs warm single-thread\n";
    auto& summary = harness.run_case(
        "summary/t" + std::to_string(thread_counts[t]), 1, [] {});
    summary.metrics.set("threads",
                        static_cast<long long>(thread_counts[t]));
    summary.metrics.set("mean_speedup", mean);
  }
  std::cout << "(thread speedups depend on available cores)\n";

  // Only trust medians from a multi-rep run; the reps=1 CI smoke stays a
  // correctness/report run.
  bool reuse_ok = true;
  if (reps >= 2 && mean_reuse < kMinReuseSpeedup) {
    std::cerr << "REUSE REGRESSION: mean warm-vs-cold speedup " << mean_reuse
              << "x is below the " << kMinReuseSpeedup << "x target\n";
    reuse_ok = false;
  }

  const bool wrote = harness.finish(std::cout);
  return wrote && consistent && reuse_ok ? 0 : 1;
}
