// Ablation bench for the implementation's design choices (DESIGN.md §3):
//  A1  priority-bag caps        — quality/time trade of the practical b'
//  A2  guess-grid granularity   — dual-approximation step size
//  A3  rescue placements        — structure-breaking escape hatch on/off
// Each section reports ratio vs the planted optimum and wall time. The
// EPTAS runs through bagsched::api; the ablation knobs are the
// SolveOptions::eptas sub-config.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "api/api.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;
namespace gen = bagsched::gen;

const api::Solver& eptas() {
  return api::SolverRegistry::global().resolve("eptas");
}

struct Cell {
  double mean_ratio = 0.0;
  double mean_seconds = 0.0;
  int pipe_fail = 0;
};

Cell run_cells(const api::SolveOptions& options) {
  Cell cell;
  const int seeds = 4;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const auto planted = gen::planted({.num_machines = 8,
                                       .num_bags = 24,
                                       .min_jobs_per_machine = 3,
                                       .max_jobs_per_machine = 6,
                                       .target = 1.0,
                                       .seed = seed});
    const auto result = eptas().solve(planted.instance, options);
    cell.mean_seconds += result.wall_seconds;
    if (api::stat_bool(result.stats, "pipeline_succeeded")) {
      cell.mean_ratio +=
          api::stat_real(result.stats, "pipeline_makespan") / planted.opt;
    } else {
      ++cell.pipe_fail;
      cell.mean_ratio += result.makespan / planted.opt;
    }
  }
  cell.mean_ratio /= seeds;
  cell.mean_seconds /= seeds;
  return cell;
}

void print_ablation_tables() {
  {
    bagsched::util::Table table({"prio_per_size", "prio_total",
                                 "pipe_ratio", "seconds", "pipe_fail"});
    for (const int cap : {0, 1, 2, 3, 6, 12}) {
      api::SolveOptions options;
      options.eps = 0.5;
      options.eptas.max_priority_per_size = cap;
      options.eptas.max_priority_total = std::max(1, 2 * cap);
      const Cell cell = run_cells(options);
      table.row()
          .add(cap)
          .add(options.eptas.max_priority_total)
          .add(cell.mean_ratio, 4)
          .add(cell.mean_seconds, 4)
          .add(cell.pipe_fail);
    }
    std::cout << "\n=== A1: priority-bag cap (practical b') ===\n";
    table.write_aligned(std::cout);
    std::cout << "expected shape: quality saturates at a small cap; time "
                 "grows with the cap (the Lemma 6 trade-off)\n";
  }
  {
    bagsched::util::Table table(
        {"guess_step_frac", "pipe_ratio", "seconds", "guesses~"});
    for (const double step : {0.125, 0.25, 0.5, 1.0, 2.0}) {
      api::SolveOptions options;
      options.eps = 0.5;
      options.eptas.guess_step_fraction = step;
      const Cell cell = run_cells(options);
      table.row()
          .add(step, 3)
          .add(cell.mean_ratio, 4)
          .add(cell.mean_seconds, 4)
          .add("");
    }
    std::cout << "\n=== A2: guess-grid granularity ===\n";
    table.write_aligned(std::cout);
    std::cout << "expected shape: finer grids buy slightly better ratios "
                 "for more guesses (log-many probes)\n";
  }
  {
    bagsched::util::Table table(
        {"rescue", "pipe_ratio", "seconds", "pipe_fail"});
    for (const bool rescue : {true, false}) {
      api::SolveOptions options;
      options.eps = 0.5;
      options.eptas.enable_rescue = rescue;
      const Cell cell = run_cells(options);
      table.row()
          .add(rescue ? "on" : "off")
          .add(cell.mean_ratio, 4)
          .add(cell.mean_seconds, 4)
          .add(cell.pipe_fail);
    }
    std::cout << "\n=== A3: rescue placements ===\n";
    table.write_aligned(std::cout);
    std::cout << "expected shape: identical on well-behaved families "
                 "(rescues never fire there); rescue-off may fail more "
                 "guesses on adversarial ones\n\n";
  }
}

void BM_AblationPriorityCap(benchmark::State& state) {
  api::SolveOptions options;
  options.eps = 0.5;
  options.eptas.max_priority_per_size = static_cast<int>(state.range(0));
  options.eptas.max_priority_total =
      std::max<int>(1, 2 * static_cast<int>(state.range(0)));
  const auto planted = gen::planted({.num_machines = 8,
                                     .num_bags = 24,
                                     .min_jobs_per_machine = 3,
                                     .max_jobs_per_machine = 6,
                                     .target = 1.0,
                                     .seed = 1});
  for (auto _ : state) {
    auto result = eptas().solve(planted.instance, options);
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_AblationPriorityCap)->Arg(0)->Arg(3)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
