// E8 (Lemma 6): cost of the MILP stage. The paper bounds the solve time by
// a function of the number of integral variables; in the column-generated
// implementation that maps to columns (patterns) and branch-and-bound
// nodes. The table reports both across instance shapes, plus raw
// LP/MILP-substrate timings.
#include <benchmark/benchmark.h>

#include <iostream>

#include "eptas/classify.h"
#include "eptas/milp_model.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "lp/simplex.h"
#include "milp/branch_and_bound.h"
#include "model/lower_bounds.h"
#include "util/csv.h"
#include "util/prng.h"
#include "util/stopwatch.h"

namespace {

namespace eptas = bagsched::eptas;
namespace gen = bagsched::gen;
using bagsched::model::Instance;

void print_master_table() {
  bagsched::util::Table table({"m", "n", "prio_cap", "prio_bags",
                               "x_sizes", "columns", "pricing_rounds",
                               "milp_nodes", "seconds"});
  for (const int m : {6, 12}) {
    for (const int prio_cap : {1, 2, 4, 8}) {
      // Planted at a tight guess (1.05 * OPT): plenty of medium/large
      // jobs, so the pattern machinery is genuinely exercised.
      const auto planted =
          gen::planted({.num_machines = m,
                        .num_bags = 3 * m,
                        .min_jobs_per_machine = 3,
                        .max_jobs_per_machine = 6,
                        .target = 1.0,
                        .seed = 5});
      const double guess = 1.05;
      std::vector<double> sizes;
      std::vector<bagsched::model::BagId> bags;
      for (const auto& job : planted.instance.jobs()) {
        sizes.push_back(job.size / guess);
        bags.push_back(job.bag);
      }
      const Instance scaled = Instance::from_vectors(
          sizes, bags, planted.instance.num_machines());
      eptas::EptasConfig config;
      config.max_priority_per_size = prio_cap;
      config.max_priority_total = 2 * prio_cap;
      const auto cls = eptas::classify(scaled, 0.5, config);
      if (!cls) continue;
      const auto transformed = eptas::transform(scaled, *cls);
      const auto space = eptas::build_pattern_space(transformed, *cls);
      bagsched::util::Stopwatch timer;
      const auto master =
          eptas::solve_master(space, transformed, *cls, config);
      const double seconds = timer.seconds();
      if (!master) continue;
      table.row()
          .add(m)
          .add(planted.instance.num_jobs())
          .add(prio_cap)
          .add(space.num_priority())
          .add(space.num_x_sizes())
          .add(master->stats.columns)
          .add(master->stats.pricing_rounds)
          .add(master->stats.milp_nodes)
          .add(seconds, 4);
    }
  }
  std::cout << "\n=== E8 / Lemma 6: pattern MILP cost ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: columns and time grow with the priority "
               "cap (the practical analogue of z integral variables)\n\n";
}

void BM_SimplexDense(benchmark::State& state) {
  // Random dense LP of the given size.
  const int n = static_cast<int>(state.range(0));
  bagsched::util::Xoshiro256 rng(42);
  bagsched::lp::Model model;
  for (int i = 0; i < n; ++i) {
    model.add_variable(rng.uniform_real(0.5, 2.0), 0.0, 5.0);
  }
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i) {
      terms.emplace_back(i, rng.uniform_real(0.0, 1.0));
    }
    model.add_constraint(std::move(terms),
                         bagsched::lp::Sense::LessEqual,
                         rng.uniform_real(2.0, 8.0));
  }
  for (auto _ : state) {
    auto result = bagsched::lp::solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(20)->Arg(60)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_MasterSolve(benchmark::State& state) {
  const auto planted =
      gen::planted({.num_machines = static_cast<int>(state.range(0)),
                    .num_bags = static_cast<int>(3 * state.range(0)),
                    .min_jobs_per_machine = 3,
                    .max_jobs_per_machine = 6,
                    .target = 1.0,
                    .seed = 5});
  const double guess = 1.05;
  std::vector<double> sizes;
  std::vector<bagsched::model::BagId> bags;
  for (const auto& job : planted.instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  const Instance scaled = Instance::from_vectors(
      sizes, bags, planted.instance.num_machines());
  const eptas::EptasConfig config;
  const auto cls = eptas::classify(scaled, 0.5, config);
  if (!cls) {
    state.SkipWithError("classification failed");
    return;
  }
  const auto transformed = eptas::transform(scaled, *cls);
  const auto space = eptas::build_pattern_space(transformed, *cls);
  for (auto _ : state) {
    auto master = eptas::solve_master(space, transformed, *cls, config);
    benchmark::DoNotOptimize(master);
  }
}
BENCHMARK(BM_MasterSolve)->Arg(6)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_master_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
