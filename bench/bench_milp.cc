// E8 (Lemma 6): cost of the MILP stage. The paper bounds the solve time by
// a function of the number of integral variables; in the column-generated
// implementation that maps to columns (patterns) and branch-and-bound
// nodes. The table reports both across instance shapes, plus raw
// LP/MILP-substrate timings.
//
// The harness section measures whole-problem assignment-MILP node
// throughput (nodes/second through the zero-copy B&B with warm-started
// LPs) and writes BENCH_milp.json for regression tracking
// (--bench-json / --bench-reps, see harness.h).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "api/api.h"
#include "eptas/classify.h"
#include "eptas/milp_model.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "harness.h"
#include "lp/simplex.h"
#include "milp/branch_and_bound.h"
#include "model/lower_bounds.h"
#include "util/csv.h"
#include "util/prng.h"
#include "util/stopwatch.h"

namespace {

namespace eptas = bagsched::eptas;
namespace gen = bagsched::gen;
using bagsched::model::Instance;

void print_master_table() {
  bagsched::util::Table table({"m", "n", "prio_cap", "prio_bags",
                               "x_sizes", "columns", "pricing_rounds",
                               "milp_nodes", "seconds"});
  for (const int m : {6, 12}) {
    for (const int prio_cap : {1, 2, 4, 8}) {
      // Planted at a tight guess (1.05 * OPT): plenty of medium/large
      // jobs, so the pattern machinery is genuinely exercised.
      const auto planted =
          gen::planted({.num_machines = m,
                        .num_bags = 3 * m,
                        .min_jobs_per_machine = 3,
                        .max_jobs_per_machine = 6,
                        .target = 1.0,
                        .seed = 5});
      const double guess = 1.05;
      std::vector<double> sizes;
      std::vector<bagsched::model::BagId> bags;
      for (const auto& job : planted.instance.jobs()) {
        sizes.push_back(job.size / guess);
        bags.push_back(job.bag);
      }
      const Instance scaled = Instance::from_vectors(
          sizes, bags, planted.instance.num_machines());
      eptas::EptasConfig config;
      config.max_priority_per_size = prio_cap;
      config.max_priority_total = 2 * prio_cap;
      const auto cls = eptas::classify(scaled, 0.5, config);
      if (!cls) continue;
      const auto transformed = eptas::transform(scaled, *cls);
      const auto space = eptas::build_pattern_space(transformed, *cls);
      bagsched::util::Stopwatch timer;
      const auto master =
          eptas::solve_master(space, transformed, *cls, config);
      const double seconds = timer.seconds();
      if (!master) continue;
      table.row()
          .add(m)
          .add(planted.instance.num_jobs())
          .add(prio_cap)
          .add(space.num_priority())
          .add(space.num_x_sizes())
          .add(master->stats.columns)
          .add(master->stats.pricing_rounds)
          .add(master->stats.milp_nodes)
          .add(seconds, 4);
    }
  }
  std::cout << "\n=== E8 / Lemma 6: pattern MILP cost ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: columns and time grow with the priority "
               "cap (the practical analogue of z integral variables)\n\n";
}

void BM_SimplexDense(benchmark::State& state) {
  // Random dense LP of the given size.
  const int n = static_cast<int>(state.range(0));
  bagsched::util::Xoshiro256 rng(42);
  bagsched::lp::Model model;
  for (int i = 0; i < n; ++i) {
    model.add_variable(rng.uniform_real(0.5, 2.0), 0.0, 5.0);
  }
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i) {
      terms.emplace_back(i, rng.uniform_real(0.0, 1.0));
    }
    model.add_constraint(std::move(terms),
                         bagsched::lp::Sense::LessEqual,
                         rng.uniform_real(2.0, 8.0));
  }
  for (auto _ : state) {
    auto result = bagsched::lp::solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(20)->Arg(60)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_MasterSolve(benchmark::State& state) {
  const auto planted =
      gen::planted({.num_machines = static_cast<int>(state.range(0)),
                    .num_bags = static_cast<int>(3 * state.range(0)),
                    .min_jobs_per_machine = 3,
                    .max_jobs_per_machine = 6,
                    .target = 1.0,
                    .seed = 5});
  const double guess = 1.05;
  std::vector<double> sizes;
  std::vector<bagsched::model::BagId> bags;
  for (const auto& job : planted.instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  const Instance scaled = Instance::from_vectors(
      sizes, bags, planted.instance.num_machines());
  const eptas::EptasConfig config;
  const auto cls = eptas::classify(scaled, 0.5, config);
  if (!cls) {
    state.SkipWithError("classification failed");
    return;
  }
  const auto transformed = eptas::transform(scaled, *cls);
  const auto space = eptas::build_pattern_space(transformed, *cls);
  for (auto _ : state) {
    auto master = eptas::solve_master(space, transformed, *cls, config);
    benchmark::DoNotOptimize(master);
  }
}
BENCHMARK(BM_MasterSolve)->Arg(6)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond);

/// Assignment-MILP node throughput on the standard instance set, via the
/// registered "milp" solver (which builds the x_ji model).
void run_harness_cases(bagsched::bench::Harness& harness) {
  namespace api = bagsched::api;
  const api::Solver& milp_solver =
      api::SolverRegistry::global().resolve("milp");
  struct Spec {
    const char* family;
    int jobs;
    int machines;
    std::uint64_t seed;
  };
  const Spec specs[] = {
      {"twopoint", 12, 3, 1},
      {"twopoint", 14, 4, 2},
      {"twopoint", 16, 4, 3},
      {"uniform", 12, 4, 1},
  };
  const int reps = harness.reps(3);
  for (const Spec& spec : specs) {
    const auto instance =
        gen::by_name(spec.family, spec.jobs, spec.machines, spec.seed);
    const std::string label = std::string(spec.family) + "-" +
                              std::to_string(spec.jobs) + "x" +
                              std::to_string(spec.machines) + "-s" +
                              std::to_string(spec.seed);
    api::SolveResult result;
    auto& entry = harness.run_case(label, reps, [&] {
      api::SolveOptions options;
      options.time_limit_seconds = 120.0;
      result = milp_solver.solve(instance, options);
    });
    const long long nodes = api::stat_int(result.stats, "nodes");
    entry.metrics.set("nodes", nodes);
    entry.metrics.set("lp_iterations",
                      api::stat_int(result.stats, "lp_iterations"));
    entry.metrics.set("makespan", result.makespan);
    entry.metrics.set("proven_optimal", result.proven_optimal);
    entry.metrics.set("nodes_per_second",
                      entry.median_seconds > 0.0
                          ? static_cast<double>(nodes) /
                                entry.median_seconds
                          : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bagsched::bench::Harness harness("milp", &argc, argv);
  print_master_table();
  run_harness_cases(harness);
  if (!harness.finish(std::cout)) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
