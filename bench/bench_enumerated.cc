// E10 (fidelity check): the paper's literal MILP (full Definition-3
// enumeration + per-pattern y variables) against the column-generated
// master. Quantifies the blow-up the practical profile avoids — patterns
// and y variables explode with instance size while column generation stays
// flat — and confirms both agree on feasibility where both run.
#include <benchmark/benchmark.h>

#include <iostream>

#include "eptas/classify.h"
#include "eptas/enumerate.h"
#include "eptas/milp_model.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace {

namespace eptas = bagsched::eptas;
namespace gen = bagsched::gen;
using bagsched::model::Instance;

void print_enumerated_table() {
  bagsched::util::Table table({"m", "n", "enum_patterns", "enum_y_vars",
                               "enum_rows", "enum_s", "colgen_cols",
                               "colgen_s", "agree"});
  for (const int m : {3, 4, 5, 6}) {
    const auto planted = gen::planted({.num_machines = m,
                                       .num_bags = 2 * m,
                                       .min_jobs_per_machine = 2,
                                       .max_jobs_per_machine = 3,
                                       .target = 1.0,
                                       .seed = 3});
    const double guess = 1.05;
    std::vector<double> sizes;
    std::vector<bagsched::model::BagId> bags;
    for (const auto& job : planted.instance.jobs()) {
      sizes.push_back(job.size / guess);
      bags.push_back(job.bag);
    }
    const Instance scaled = Instance::from_vectors(
        sizes, bags, planted.instance.num_machines());
    const eptas::EptasConfig config;
    const auto cls = eptas::classify(scaled, 0.5, config);
    if (!cls) continue;
    const auto transformed = eptas::transform(scaled, *cls);
    const auto space = eptas::build_pattern_space(transformed, *cls);

    eptas::EnumeratedStats stats;
    bagsched::util::Stopwatch enum_timer;
    const auto literal = eptas::solve_enumerated_master(
        space, transformed, *cls, config, false, &stats);
    const double enum_seconds = enum_timer.seconds();

    bagsched::util::Stopwatch colgen_timer;
    const auto colgen =
        eptas::solve_master(space, transformed, *cls, config);
    const double colgen_seconds = colgen_timer.seconds();

    table.row()
        .add(m)
        .add(planted.instance.num_jobs())
        .add(stats.patterns)
        .add(stats.y_variables)
        .add(stats.constraints)
        .add(enum_seconds, 4)
        .add(colgen ? colgen->stats.columns : 0)
        .add(colgen_seconds, 4)
        .add(literal.has_value() == colgen.has_value() ? "yes" : "NO");
  }
  std::cout << "\n=== E10: literal MILP (paper §3) vs column generation "
               "===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: enum_patterns/enum_y_vars explode with m "
               "while colgen_cols stays flat; agree = yes on every row\n\n";
}

void BM_EnumeratedMaster(benchmark::State& state) {
  const auto planted =
      gen::planted({.num_machines = static_cast<int>(state.range(0)),
                    .num_bags = static_cast<int>(2 * state.range(0)),
                    .min_jobs_per_machine = 2,
                    .max_jobs_per_machine = 3,
                    .target = 1.0,
                    .seed = 3});
  std::vector<double> sizes;
  std::vector<bagsched::model::BagId> bags;
  for (const auto& job : planted.instance.jobs()) {
    sizes.push_back(job.size / 1.05);
    bags.push_back(job.bag);
  }
  const Instance scaled = Instance::from_vectors(
      sizes, bags, planted.instance.num_machines());
  const eptas::EptasConfig config;
  const auto cls = eptas::classify(scaled, 0.5, config);
  if (!cls) {
    state.SkipWithError("classification failed");
    return;
  }
  const auto transformed = eptas::transform(scaled, *cls);
  const auto space = eptas::build_pattern_space(transformed, *cls);
  for (auto _ : state) {
    auto master =
        eptas::solve_enumerated_master(space, transformed, *cls, config);
    benchmark::DoNotOptimize(master);
  }
}
BENCHMARK(BM_EnumeratedMaster)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_enumerated_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
