// E7 (Lemma 8): bag-LPT invariants, measured. Starting from equal machine
// heights, (a) any two machines end within p_max of each other and (b) the
// highest machine is at most h + A/m' + p_max. Both bounds are hard
// invariants — the `viol` columns must stay 0 across the sweep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "api/api.h"
#include "util/csv.h"

namespace {

namespace api = bagsched::api;
namespace gen = bagsched::gen;

void print_baglpt_table() {
  bagsched::util::Table table({"m", "bags", "seed", "spread", "pmax",
                               "makespan", "bound(x+pmax)", "viol"});
  for (const int m : {4, 8, 16, 32}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      gen::BagHeavyParams params;
      params.num_machines = m;
      params.num_bags = m;  // m bags of m jobs: dense
      params.fill = 1.0;
      params.seed = seed;
      const auto instance = gen::bag_heavy(params);
      const auto schedule =
          api::solve("bag-lpt", instance).schedule;
      const auto loads = schedule.loads(instance);
      const double lo = *std::min_element(loads.begin(), loads.end());
      const double hi = *std::max_element(loads.begin(), loads.end());
      const double x = instance.total_area() / m;
      const double bound = x + instance.max_size();
      const int violations =
          (hi - lo > instance.max_size() + 1e-9 ? 1 : 0) +
          (hi > bound + 1e-9 ? 1 : 0);
      table.row()
          .add(m)
          .add(instance.num_bags())
          .add(static_cast<long long>(seed))
          .add(hi - lo, 4)
          .add(instance.max_size(), 4)
          .add(hi, 4)
          .add(bound, 4)
          .add(violations);
    }
  }
  std::cout << "\n=== E7 / Lemma 8: bag-LPT spread and height bounds ===\n";
  table.write_aligned(std::cout);
  std::cout << "expected shape: spread <= pmax, makespan <= bound, "
               "viol = 0 everywhere\n\n";
}

// Times Solver::solve (algorithm + api validation wrapper), not the bare
// bag_lpt call — the cost an api caller pays.
void BM_BagLpt(benchmark::State& state) {
  gen::BagHeavyParams params;
  params.num_machines = static_cast<int>(state.range(0));
  params.num_bags = static_cast<int>(state.range(0));
  params.fill = 1.0;
  params.seed = 1;
  const auto instance = gen::bag_heavy(params);
  const auto& solver = api::SolverRegistry::global().resolve("bag-lpt");
  for (auto _ : state) {
    auto result = solver.solve(instance);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["jobs"] = instance.num_jobs();
}
BENCHMARK(BM_BagLpt)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_baglpt_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
