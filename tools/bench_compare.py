#!/usr/bin/env python3
"""CI perf-regression gate over the harness benchmark JSONs.

Compares freshly produced BENCH_*.json files (bench/harness.{h,cc} output)
against the committed baselines in bench/baselines/ and fails the build
when any case's median runtime regressed beyond the tolerance.

    tools/bench_compare.py BENCH_exact.json BENCH_service.json ...
    tools/bench_compare.py --tolerance 0.25 --baselines bench/baselines \
        BENCH_*.json
    tools/bench_compare.py --case-tolerance 'BENCH_eptas.json::*/t*=0.6' \
        BENCH_eptas.json             # wider bar for one noisy case family
    tools/bench_compare.py --self-test        # gate sanity check

Rules, per (file, case label):
  * the effective tolerance is the first --case-tolerance PATTERN=VALUE
    whose fnmatch PATTERN matches "<file>::<label>", else --tolerance —
    so a handful of noisy cases (e.g. thread-count curves on shared CI
    runners) can get a wider bar without loosening the whole gate
  * ratio = fresh median / baseline median
  * ratio > 1 + tolerance            -> REGRESSION (build fails)
  * ratio < 1 / (1 + tolerance)      -> improvement (reported; consider
                                        re-baselining to tighten the gate)
  * both medians below --min-seconds -> skipped (noise floor: timer jitter
                                        on micro-cases would make the gate
                                        flaky)
  * case only in the baseline        -> MISSING (build fails: a bench
                                        silently lost coverage)
  * case only in the fresh file      -> new (reported; re-baseline to
                                        start tracking it)
  * baseline file absent             -> build fails; run the bench with
                                        --bench-json and commit the output
                                        under bench/baselines/

--self-test verifies the gate itself: every committed baseline must pass
against an identical copy and fail against a copy with all medians
doubled (the "injected 2x slowdown"). CI runs this next to the real
comparison so a broken gate cannot silently wave regressions through.

Re-baselining (after an intentional perf change, or when moving to new CI
hardware): rebuild Release, run each harness bench with
`--bench-json --bench-reps=5`, copy the BENCH_*.json files over
bench/baselines/, and commit them together with the change that shifted
the numbers. Tolerance can be widened per run via BENCH_COMPARE_TOLERANCE
without touching the workflow file.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.25
DEFAULT_MIN_SECONDS = 1e-3


def parse_case_tolerance(spec: str) -> tuple[str, float]:
    """'PATTERN=VALUE' -> (PATTERN, VALUE); PATTERN fnmatches file::label."""
    pattern, sep, value = spec.rpartition("=")
    if not sep or not pattern:
        raise argparse.ArgumentTypeError(
            f"--case-tolerance expects PATTERN=VALUE, got {spec!r}"
        )
    try:
        tolerance = float(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"--case-tolerance {spec!r}: {value!r} is not a number"
        ) from error
    if tolerance <= 0:
        raise argparse.ArgumentTypeError(
            f"--case-tolerance {spec!r}: tolerance must be positive"
        )
    return pattern, tolerance


def load_cases(path: Path) -> dict[str, float]:
    """label -> median_seconds from one harness JSON document."""
    with path.open() as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "cases" not in doc:
        raise ValueError(f"{path}: not a harness bench JSON (no 'cases')")
    cases: dict[str, float] = {}
    for case in doc["cases"]:
        cases[case["label"]] = float(case["median_seconds"])
    return cases


class Comparison:
    def __init__(
        self,
        tolerance: float,
        min_seconds: float,
        case_tolerances: list[tuple[str, float]] | None = None,
    ) -> None:
        self.tolerance = tolerance
        self.min_seconds = min_seconds
        self.case_tolerances = case_tolerances or []
        self.failures: list[str] = []
        self.notes: list[str] = []

    def tolerance_for(self, name: str, label: str) -> float:
        """First matching --case-tolerance wins; else the global tolerance."""
        key = f"{name}::{label}"
        for pattern, tolerance in self.case_tolerances:
            if fnmatch.fnmatch(key, pattern):
                return tolerance
        return self.tolerance

    def compare_file(self, fresh_path: Path, baseline_path: Path) -> None:
        name = fresh_path.name
        if not baseline_path.exists():
            self.failures.append(
                f"{name}: no committed baseline at {baseline_path} — run the "
                "bench with --bench-json and commit the output"
            )
            return
        fresh = load_cases(fresh_path)
        baseline = load_cases(baseline_path)

        for label in baseline:
            if label not in fresh:
                self.failures.append(
                    f"{name} :: {label}: present in the baseline but not in "
                    "the fresh run (bench lost coverage?)"
                )
        for label in fresh:
            if label not in baseline:
                self.notes.append(
                    f"{name} :: {label}: new case (no baseline yet; "
                    "re-baseline to start tracking it)"
                )

        for label, base_median in sorted(baseline.items()):
            if label not in fresh:
                continue
            fresh_median = fresh[label]
            if (
                base_median < self.min_seconds
                and fresh_median < self.min_seconds
            ):
                self.notes.append(
                    f"{name} :: {label}: below the {self.min_seconds:g}s "
                    "noise floor, skipped"
                )
                continue
            if base_median <= 0.0:
                self.notes.append(
                    f"{name} :: {label}: zero baseline median, skipped"
                )
                continue
            tolerance = self.tolerance_for(name, label)
            ratio = fresh_median / base_median
            line = (
                f"{name} :: {label}: {base_median:.4f}s -> "
                f"{fresh_median:.4f}s ({ratio:.2f}x"
                + (
                    f", case tolerance ±{tolerance:.0%}"
                    if tolerance != self.tolerance
                    else ""
                )
                + ")"
            )
            if ratio > 1.0 + tolerance:
                self.failures.append(f"REGRESSION {line}")
            elif ratio < 1.0 / (1.0 + tolerance):
                self.notes.append(f"improvement {line} — consider re-baseline")
            else:
                self.notes.append(f"ok {line}")

    def report(self) -> int:
        for note in self.notes:
            print(f"  {note}")
        if self.failures:
            print(
                f"\nbench_compare: FAILED ({len(self.failures)} problem(s), "
                f"tolerance ±{self.tolerance:.0%}):",
                file=sys.stderr,
            )
            for failure in self.failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nbench_compare: OK (tolerance ±{self.tolerance:.0%})")
        return 0


def self_test(baselines_dir: Path, tolerance: float, min_seconds: float) -> int:
    """The gate must accept identical numbers and reject a 2x slowdown."""
    baseline_files = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(
            f"bench_compare --self-test: no baselines in {baselines_dir}",
            file=sys.stderr,
        )
        return 1
    problems = 0
    for path in baseline_files:
        cases = load_cases(path)
        gateable = {
            label: median
            for label, median in cases.items()
            if median >= min_seconds
        }
        if not gateable:
            print(
                f"  self-test {path.name}: SKIPPED (every case below the "
                f"{min_seconds:g}s noise floor — raise --bench-reps or grow "
                "the cases)"
            )
            continue

        identical = Comparison(tolerance, min_seconds)
        ok_pass = _compare_maps(identical, path.name, cases, cases)

        slowdown = Comparison(tolerance, min_seconds)
        doubled = {label: 2.0 * median for label, median in cases.items()}
        ok_fail = not _compare_maps(slowdown, path.name, doubled, cases)

        status_pass = "ok" if ok_pass else "BROKEN (identical run rejected)"
        status_fail = (
            "ok" if ok_fail else "BROKEN (2x slowdown NOT caught)"
        )
        print(
            f"  self-test {path.name}: identical={status_pass}, "
            f"injected-2x={status_fail}"
        )
        if not ok_pass or not ok_fail:
            problems += 1
    if problems:
        print(
            f"bench_compare --self-test: FAILED on {problems} baseline "
            "file(s)",
            file=sys.stderr,
        )
        return 1
    print("bench_compare --self-test: OK (gate accepts steady runs and "
          "rejects a 2x slowdown)")
    return 0


def _compare_maps(
    comparison: Comparison,
    name: str,
    fresh: dict[str, float],
    baseline: dict[str, float],
) -> bool:
    """True when `fresh` passes the gate against `baseline`."""
    before = len(comparison.failures)
    for label, base_median in baseline.items():
        fresh_median = fresh.get(label)
        if fresh_median is None:
            comparison.failures.append(f"{name} :: {label}: missing")
            continue
        if (
            base_median < comparison.min_seconds
            and fresh_median < comparison.min_seconds
        ) or base_median <= 0.0:
            continue
        if fresh_median / base_median > 1.0 + comparison.tolerance:
            comparison.failures.append(f"{name} :: {label}: regression")
    return len(comparison.failures) == before


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="*", type=Path,
                        help="freshly produced BENCH_*.json files")
    parser.add_argument(
        "--baselines", type=Path, default=Path("bench/baselines"),
        help="directory with the committed baseline JSONs",
    )
    env_tolerance = os.environ.get("BENCH_COMPARE_TOLERANCE", "").strip()
    parser.add_argument(
        "--tolerance", type=float,
        default=float(env_tolerance) if env_tolerance
        else DEFAULT_TOLERANCE,
        help="allowed relative slowdown before failing (default 0.25; env "
             "override BENCH_COMPARE_TOLERANCE)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="noise floor: cases faster than this in both runs are skipped",
    )
    parser.add_argument(
        "--case-tolerance", type=parse_case_tolerance, action="append",
        default=[], metavar="PATTERN=VALUE",
        help="per-case tolerance override; PATTERN fnmatches "
             "'<file>::<label>' (repeatable, first match wins)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate passes identical runs and fails a 2x slowdown",
    )
    args = parser.parse_args()

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    if args.self_test:
        return self_test(args.baselines, args.tolerance, args.min_seconds)
    if not args.files:
        parser.error("no BENCH_*.json files given (or use --self-test)")

    comparison = Comparison(args.tolerance, args.min_seconds,
                            args.case_tolerance)
    for fresh_path in args.files:
        if not fresh_path.exists():
            comparison.failures.append(
                f"{fresh_path}: fresh bench output not found — did the bench "
                "run with --bench-json?"
            )
            continue
        comparison.compare_file(fresh_path, args.baselines / fresh_path.name)
    return comparison.report()


if __name__ == "__main__":
    sys.exit(main())
