#!/usr/bin/env bash
# End-to-end smoke for the network service: start sched_server, drive a
# remote solve with streamed progress through `instance_tool --connect`,
# fetch a JSON result, scrape /metrics, then SIGTERM the daemon and assert
# a clean graceful drain (exit 0 and the "drained:" summary line).
# A second phase covers durability: a journaled server is SIGKILLed with a
# session left open and must come back with that session recovered and the
# recovery counters scrape-able (`instance_tool metrics --recovery`).
#
#   tools/net_smoke.sh [build-dir]    (default: build)
#
# Also runs under the ASan/UBSan build in CI, so the whole wire path —
# server loop, sink bridge, client — gets sanitizer coverage end to end.
set -euo pipefail

BUILD="${1:-build}"
work="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

"$BUILD/instance_tool" gen uniform 60 6 7 "$work/smoke.instance"

"$BUILD/sched_server" --port 0 --threads 2 --max-queue 64 \
  >"$work/server.log" 2>&1 &
server_pid=$!
for _ in $(seq 100); do
  grep -q "listening on" "$work/server.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "listening on" "$work/server.log"
port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$work/server.log")"
echo "server up on port $port"

# Remote solve with streamed progress frames.
"$BUILD/instance_tool" solve "$work/smoke.instance" 0.4 eptas \
  --connect "127.0.0.1:$port" --progress
# Remote solve with a machine-readable result; validate the JSON.
"$BUILD/instance_tool" solve "$work/smoke.instance" 0.4 greedy-bags \
  --connect "127.0.0.1:$port" --json >"$work/result.json"
"$BUILD/instance_tool" jsoncheck "$work/result.json"
# Online session over the wire (protocol v2): open a session, stream two
# deltas through it, and check the per-delta report mentions a repair path
# and a migration count.
printf '{"arrivals":[{"size":0.9,"bag":0}],"departures":[1]}' \
  >"$work/delta1.json"
printf '{"machines_added":1,"resizes":[{"job":2,"size":1.25}]}' \
  >"$work/delta2.json"
"$BUILD/instance_tool" delta "$work/smoke.instance" 0.4 \
  "$work/delta1.json" "$work/delta2.json" \
  --connect "127.0.0.1:$port" >"$work/delta.out"
grep -q "^session " "$work/delta.out"
grep -q "moved .* jobs" "$work/delta.out"
# And as machine-readable JSON.
"$BUILD/instance_tool" delta "$work/smoke.instance" 0.4 \
  "$work/delta1.json" --connect "127.0.0.1:$port" --json \
  >"$work/delta.json"
"$BUILD/instance_tool" jsoncheck "$work/delta.json"

# Prometheus endpoint reflects the solves and the session traffic.
"$BUILD/instance_tool" metrics "127.0.0.1:$port" >"$work/metrics.txt"
grep -q "^bagsched_service_submitted_total 2$" "$work/metrics.txt"
grep -q "^bagsched_service_finished_total 2$" "$work/metrics.txt"
grep -q "^bagsched_server_connections_accepted" "$work/metrics.txt"
grep -q "^bagsched_server_session_opens_total 2$" "$work/metrics.txt"

# Graceful drain: SIGTERM must exit 0 with the drain summary.
kill -TERM "$server_pid"
wait "$server_pid"
grep -q "^drained:" "$work/server.log"
server_pid=""

# --- Restart-and-resume: sessions survive a SIGKILL via the journal -------
# Open a session, leave it open (no session_close), SIGKILL the server,
# restart it on the same --journal-dir, and assert the session came back.
mkdir "$work/journal"
"$BUILD/sched_server" --port 0 --threads 2 --max-queue 64 \
  --journal-dir "$work/journal" --fsync interval --session-linger 60 \
  >"$work/server2.log" 2>&1 &
server_pid=$!
for _ in $(seq 100); do
  grep -q "listening on" "$work/server2.log" 2>/dev/null && break
  sleep 0.1
done
port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$work/server2.log")"
echo "journaled server up on port $port"

"$BUILD/instance_tool" delta "$work/smoke.instance" 0.4 \
  "$work/delta1.json" "$work/delta2.json" \
  --connect "127.0.0.1:$port" --keep-open >"$work/delta2.out"
grep -q "left open$" "$work/delta2.out"

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

"$BUILD/sched_server" --port 0 --threads 2 --max-queue 64 \
  --journal-dir "$work/journal" --fsync interval --session-linger 60 \
  >"$work/server3.log" 2>&1 &
server_pid=$!
for _ in $(seq 100); do
  grep -q "^recovered " "$work/server3.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "^recovered 1 session(s) from" "$work/server3.log"
port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$work/server3.log")"

# The recovery counter families are live and scrape-able via --recovery.
"$BUILD/instance_tool" metrics "127.0.0.1:$port" --recovery \
  >"$work/recovery.txt"
grep -q "^bagsched_journal_records_replayed_total [1-9]" "$work/recovery.txt"
grep -q "^bagsched_server_sessions_orphaned_total 1$" "$work/recovery.txt"
! grep -q "^#" "$work/recovery.txt"  # --recovery strips comment lines

kill -TERM "$server_pid"
wait "$server_pid"
grep -q "^drained:" "$work/server3.log"
server_pid=""
echo "net smoke OK"
